"""Deterministic fault injection for the cluster's chaos tests.

Robustness claims rot unless they are *exercised*: this module stages
the failures the replication and supervision machinery promises to
survive — worker death, lost disks, corrupt replica bytes, hung
sockets, slow followers — as **seeded, reproducible** operations.  A
chaos test that fails replays byte-for-byte from its seed; there is no
"flaky, reran, green" state.

Everything here either delegates to a cluster chaos hook
(:meth:`~repro.cluster.ShardedCluster.kill_worker`,
:meth:`~repro.cluster.ShardedCluster.destroy_worker_store`,
``replication_delay``) or damages files the way real failures do
(in-place byte flips, truncation) — deliberately *without* the
tmp + ``os.replace`` idiom, because torn files are the point.
"""

from __future__ import annotations

import os
import random
import socket
import threading
from pathlib import Path
from typing import List, Optional

from repro.errors import ClusterError
from repro.storage.format import HEADER_SIZE


def corrupt_file(path, seed: int, mode: str = "flip") -> str:
    """Deterministically damage one file; returns what was done.

    ``mode="flip"`` XORs one body byte (position chosen by ``seed``) —
    the bit-rot a checksum must catch.  ``mode="truncate"`` cuts the
    file to a seed-chosen prefix — the torn-write / partial-copy case.
    Binary artifacts keep their header intact so the damage is only
    detectable by *verifying*, not by parsing.
    """
    path = Path(path)
    size = path.stat().st_size
    rng = random.Random(seed)
    floor = min(HEADER_SIZE, max(size - 1, 0))
    if mode == "flip":
        if size == 0:
            raise ValueError(f"cannot corrupt empty file {path}")
        position = rng.randrange(floor, size)
        # In-place on purpose (no tmp + os.replace): simulating bit
        # rot inside an existing file, not publishing a new one.
        fd = os.open(path, os.O_WRONLY)
        try:
            os.lseek(fd, position, os.SEEK_SET)
            original = path.read_bytes()[position]
            os.write(fd, bytes([original ^ 0xFF]))
        finally:
            os.close(fd)
        return f"flipped byte {position} of {path.name}"
    if mode == "truncate":
        keep = rng.randrange(floor, max(size, floor + 1))
        os.truncate(path, keep)
        return f"truncated {path.name} to {keep}/{size} bytes"
    raise ValueError(f"unknown corruption mode {mode!r}")


class HungSocket:
    """A listener that accepts connections and never answers.

    The deadline/retry machinery's worst case: not a refused
    connection (instant error) but a server that takes the request and
    goes silent.  Use as a context manager; ``port`` is where it
    listens.
    """

    def __init__(self, host: str = "127.0.0.1") -> None:
        self._host = host
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, 0))
        self._server.listen(16)
        self.port = self._server.getsockname()[1]
        self._accepted: List[socket.socket] = []
        self._accepted_lock = threading.Lock()
        self._closed = threading.Event()
        self._thread = threading.Thread(target=self._accept_loop,
                                        name="repro-hung-socket",
                                        daemon=True)
        self._thread.start()

    @property
    def url(self) -> str:
        """A base URL a :class:`ServerClient` can point at."""
        return f"http://{self._host}:{self.port}"

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                connection, _ = self._server.accept()
            except OSError:
                return  # listener closed
            # Hold the connection open, read nothing, send nothing.
            with self._accepted_lock:
                self._accepted.append(connection)

    def close(self) -> None:
        """Release the listener and every held connection."""
        self._closed.set()
        self._server.close()
        with self._accepted_lock:
            held, self._accepted = self._accepted, []
        for connection in held:
            try:
                connection.close()
            except OSError:  # pragma: no cover - already gone
                pass
        self._thread.join(timeout=5)

    def __enter__(self) -> "HungSocket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FaultInjector:
    """Seeded driver of cluster failures.

    One instance per chaos test; every choice (which worker dies next,
    which replica file rots, where the flip lands) comes from its own
    :class:`random.Random`, so the whole failure schedule replays from
    the seed.
    """

    def __init__(self, cluster, seed: int) -> None:
        self.cluster = cluster
        self.seed = seed
        self.rng = random.Random(seed)
        #: Human-readable ledger of everything injected, in order —
        #: printed by failing tests so a red run is diagnosable.
        self.log: List[str] = []

    def _note(self, what: str) -> str:
        self.log.append(what)
        return what

    # -- process faults ------------------------------------------------
    def rolling_restart_order(self) -> List[int]:
        """Every worker slot once, in a seed-shuffled order."""
        order = list(range(self.cluster.num_workers))
        self.rng.shuffle(order)
        return order

    def kill_worker(self, slot: Optional[int] = None) -> int:
        """SIGKILL one worker (seed-chosen when ``slot`` is None);
        returns the slot killed."""
        if slot is None:
            live = [candidate for candidate, client
                    in self.cluster.live_clients() if client is not None]
            if not live:
                raise ClusterError("no live worker to kill")
            slot = self.rng.choice(live)
        pid = self.cluster.kill_worker(slot)
        self._note(f"killed worker {slot} (pid {pid})")
        return slot

    def destroy_store(self, slot: Optional[int] = None) -> int:
        """Kill a worker *and* delete its primary store root (the
        disk-died scenario); returns the slot."""
        if slot is None:
            live = [candidate for candidate, client
                    in self.cluster.live_clients() if client is not None]
            if not live:
                raise ClusterError("no live worker to destroy")
            slot = self.rng.choice(live)
        root = self.cluster.destroy_worker_store(slot)
        self._note(f"killed worker {slot} and destroyed {root}")
        return slot

    # -- data faults ---------------------------------------------------
    def corrupt_replica(self, slot: int, follower: int = 0,
                        mode: str = "flip") -> Optional[str]:
        """Damage one seed-chosen binary artifact in a replica root;
        returns the note (``None`` when the replica has no binaries)."""
        root = self.cluster.replica_root(slot, follower)
        artifacts = sorted(root.glob("objects/**/*.bin"))
        if not artifacts:
            return None
        victim = artifacts[self.rng.randrange(len(artifacts))]
        note = corrupt_file(victim, self.rng.randrange(2 ** 31),
                            mode=mode)
        return self._note(f"replica {slot}/{follower}: {note}")

    # -- timing faults -------------------------------------------------
    def slow_follower(self, delay: float) -> None:
        """Throttle replication to ``delay`` seconds per file (0 to
        restore full speed)."""
        self.cluster.replication_delay = delay
        self._note(f"replication delay set to {delay}s")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultInjector(seed={self.seed}, "
                f"injected={len(self.log)})")
