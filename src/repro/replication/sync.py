"""Follower store sync: mirror an :class:`IndexStore` root byte-cheaply.

A follower root is a warm-start site that shares no disk with the
primary: when a worker's machine (or store root) dies, a respawn can
seed itself from the replica and serve the same artifacts.  The sync
is pull-shaped and idempotent — run it as often as you like; each pass
ships only what the follower is missing.

The paged binary format makes the interesting case cheap.  A delta
re-version (:func:`repro.storage.writer.write_delta`) copies its base
artifact and only *appends* replacement blocks and patches the offset
dictionary — the labels blob, profile blob and heap prefix are
byte-identical to the base.  So when the follower already holds any
ancestor of an artifact's delta chain, the new version ships as three
byte ranges — header, offset dictionary, appended heap tail — and the
rest is assembled from follower-local bytes.  Every assembled (and
every fully copied) binary artifact is verified against its header's
SHA-256 before it is installed; a mismatch falls back to a full copy,
and a corrupt *source* refuses to replicate at all.

The follower's ``manifest.json`` is written last (tmp +
:func:`os.replace`), after every artifact it references has landed —
a reader of the follower never sees a manifest pointing at missing or
half-shipped files.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ArtifactFormatError, StoreError
from repro.storage.format import HEADER_SIZE, Header

#: Mirror of the store's manifest tag/version (``repro.service.store``);
#: replication validates manifests without constructing an IndexStore
#: (which would *create* one at a path that should stay read-only).
_MANIFEST_FORMAT = "repro-index-store"
_MANIFEST_VERSION = 1

#: Artifact names a version record may reference, in canonical order
#: (mirrors ``repro.service.store.ARTIFACT_NAMES``).
_ARTIFACT_NAMES = ("tsd", "gct", "hybrid", "scores")


def read_store_manifest(root) -> Dict:
    """Parse and validate a store manifest without opening the store.

    Never creates or mutates anything under ``root`` — unlike
    constructing an :class:`~repro.service.IndexStore`, which
    initialises an empty manifest at a missing root.  The manifest is
    written atomically by every writer, so a lock-free point-in-time
    read is internally consistent.
    """
    path = Path(root) / "manifest.json"
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise StoreError(f"{path}: unreadable manifest ({exc})") from exc
    except ValueError as exc:
        raise StoreError(f"{path}: corrupt manifest ({exc})") from exc
    if not isinstance(manifest, dict) \
            or manifest.get("format") != _MANIFEST_FORMAT:
        raise StoreError(f"{path}: not an index-store manifest")
    if manifest.get("version") != _MANIFEST_VERSION:
        raise StoreError(f"{path}: unsupported manifest version "
                         f"{manifest.get('version')!r}")
    return manifest


def verify_artifact(path) -> bool:
    """Whether one binary artifact's bytes match its header checksum."""
    try:
        data = Path(path).read_bytes()
        header = Header.unpack(data, source=str(path))
    except (OSError, ArtifactFormatError):
        return False
    return (header.file_len == len(data)
            and hashlib.sha256(data[HEADER_SIZE:]).digest()
            == header.checksum)


@dataclass(frozen=True)
class ReplicationReport:
    """What one :func:`replicate_store` pass shipped and reused."""

    keys: int             # graph lineages covered
    files_full: int       # artifacts copied whole
    files_delta: int      # artifacts assembled from a follower-local base
    files_skipped: int    # already present and verified
    files_repaired: int   # present but wrong/corrupt; re-synced
    bytes_shipped: int    # bytes read from the primary's files
    bytes_reused: int     # bytes taken from follower-local bases/files
    #: Per selected graph key, the newest version number the follower
    #: durably holds after this pass — the journal-checkpoint floor.
    version_floors: Dict[str, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.version_floors is None:
            object.__setattr__(self, "version_floors", {})

    @property
    def files_synced(self) -> int:
        """Artifacts that moved this pass (full + delta)."""
        return self.files_full + self.files_delta

    def summary(self) -> str:
        """One-line human summary for service logs."""
        return (f"replicated {self.keys} lineage(s): "
                f"{self.files_full} full, {self.files_delta} delta, "
                f"{self.files_skipped} up-to-date, "
                f"{self.files_repaired} repaired "
                f"({self.bytes_shipped:,} B shipped, "
                f"{self.bytes_reused:,} B reused)")

    def to_payload(self) -> Dict[str, object]:
        """JSON-able form (surfaced through cluster stats)."""
        return {
            "keys": self.keys,
            "files_full": self.files_full,
            "files_delta": self.files_delta,
            "files_skipped": self.files_skipped,
            "files_repaired": self.files_repaired,
            "bytes_shipped": self.bytes_shipped,
            "bytes_reused": self.bytes_reused,
            "version_floors": dict(self.version_floors),
        }


def _write_bytes_atomic(path: Path, data: bytes) -> None:
    """Durable write: tmp sibling + :func:`os.replace`."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def _index_manifest(graphs: Dict, selected: Set[str]) -> Tuple[
        Dict[str, Tuple[str, str]], Dict[Tuple[str, str], List[str]],
        Dict[str, Set[str]]]:
    """Index the source manifest for the sync pass.

    Returns ``(wanted, bases, parents)``: the relpaths the selected
    keys reference (→ owning ``(key, artifact name)``), *every* key's
    per-artifact relpath list in version order (delta-base candidates —
    a base may belong to a key outside the selection, e.g. an earlier
    sync already shipped the parent lineage), and each key's
    cross-lineage parent keys.
    """
    wanted: Dict[str, Tuple[str, str]] = {}
    bases: Dict[Tuple[str, str], List[str]] = {}
    parents: Dict[str, Set[str]] = {}
    for key, entry in graphs.items():
        for number, record in sorted(entry["versions"].items(),
                                     key=lambda item: int(item[0])):
            for name in _ARTIFACT_NAMES:
                relpath = record.get(name)
                if relpath is None:
                    continue
                bucket = bases.setdefault((key, name), [])
                if relpath not in bucket:
                    bucket.append(relpath)
                if key in selected:
                    wanted.setdefault(relpath, (key, name))
            parent = record.get("parent")
            if parent is not None:
                parents.setdefault(key, set()).add(parent["key"])
    return wanted, bases, parents


def _delta_candidates(relpath: str, key: str, name: str,
                      bases: Dict[Tuple[str, str], List[str]],
                      parents: Dict[str, Set[str]]) -> List[str]:
    """Follower-local base candidates for one binary artifact.

    The artifact's own lineage (other versions of the same key) plus
    cross-lineage parents' — a live-update delta chain crosses keys
    because updated graph content fingerprints differently.  Later
    versions first: the longest base reuses the most bytes.
    """
    candidates: List[str] = []
    for base_key in [key] + sorted(parents.get(key, ())):
        for candidate in bases.get((base_key, name), ()):
            if candidate != relpath and candidate not in candidates:
                candidates.append(candidate)
    candidates.reverse()
    return [c for c in candidates if c.endswith(".bin")]


def _read_ranges(path: Path, ranges: List[Tuple[int, int]]) -> List[bytes]:
    """Read ``(offset, length)`` byte ranges from one file."""
    chunks = []
    with path.open("rb") as handle:
        for offset, length in ranges:
            handle.seek(offset)
            chunk = handle.read(length)
            if len(chunk) != length:
                raise StoreError(f"{path}: truncated read at {offset} "
                                 f"(wanted {length}, got {len(chunk)})")
            chunks.append(chunk)
    return chunks


def _try_delta(src_path: Path, dst_path: Path, src_header: Header,
               src_header_bytes: bytes, follower_root: Path,
               candidates: List[str]) -> Optional[Tuple[int, int]]:
    """Assemble ``dst_path`` from a local base + shipped byte ranges.

    Returns ``(bytes_shipped, bytes_reused)`` on success, ``None`` when
    no candidate base applies (caller falls back to a full copy).  The
    assembled bytes must hash to the source header's checksum — a base
    that diverged (or was corrupted) is simply not used.
    """
    for candidate in candidates:
        base_path = follower_root / candidate
        try:
            base = base_path.read_bytes()
            base_header = Header.unpack(base, source=str(base_path))
        except (OSError, ArtifactFormatError):
            continue
        if (base_header.kind != src_header.kind
                or base_header.num_vertices != src_header.num_vertices
                or base_header.labels_off != src_header.labels_off
                or base_header.labels_len != src_header.labels_len
                or base_header.profile_off != src_header.profile_off
                or base_header.profile_len != src_header.profile_len
                or base_header.dict_off != src_header.dict_off
                or base_header.heap_off != src_header.heap_off
                or base_header.file_len != len(base)
                or base_header.file_len > src_header.file_len):
            continue
        dict_len = src_header.heap_off - src_header.dict_off
        tail_len = src_header.file_len - base_header.file_len
        dict_bytes, tail = _read_ranges(
            src_path, [(src_header.dict_off, dict_len),
                       (base_header.file_len, tail_len)])
        out = bytearray(src_header_bytes)
        out += base[HEADER_SIZE:src_header.dict_off]
        out += dict_bytes
        out += base[src_header.heap_off:base_header.file_len]
        out += tail
        if hashlib.sha256(bytes(out[HEADER_SIZE:])).digest() \
                != src_header.checksum:
            continue  # base diverged from this delta chain: unusable
        _write_bytes_atomic(dst_path, bytes(out))
        shipped = HEADER_SIZE + dict_len + tail_len
        return shipped, len(out) - shipped
    return None


def replicate_store(source_root, follower_root, *,
                    keys: Optional[List[str]] = None,
                    merge: bool = False,
                    throttle: Optional[Callable[[str], None]] = None,
                    ) -> ReplicationReport:
    """One sync pass: make ``follower_root`` serve ``source_root``'s keys.

    Parameters
    ----------
    source_root:
        The primary store's root.  Read-only: nothing under it is
        created or mutated, and no lock is taken — the manifest and
        every artifact are written atomically by the store, so a
        point-in-time read is consistent.  (A file deleted by a
        concurrent ``compact`` surfaces as a
        :class:`~repro.errors.StoreError`; rerun the pass.)
    follower_root:
        The replica root (created if missing).  After the pass, it is
        a valid store root: an :class:`~repro.service.IndexStore`
        opened on it warm-starts the replicated lineages.
    keys:
        Restrict the sync to these graph keys (default: all).
    merge:
        Keep the follower's existing catalogue entries for keys the
        source does not carry (the shard-move path merges one worker's
        lineages into another worker's live store).  Without ``merge``
        the follower manifest becomes an exact mirror of the selection.
    throttle:
        Called with each relpath before it is examined — the fault
        harness's slow-follower hook.
    """
    source_root = Path(source_root)
    follower_root = Path(follower_root)
    manifest = read_store_manifest(source_root)
    graphs: Dict = manifest["graphs"]
    selected = set(graphs) if keys is None else set(keys)
    unknown = selected - set(graphs)
    if unknown:
        raise StoreError(f"{source_root}: no such graph key(s) "
                         f"{sorted(unknown)}")
    follower_root.mkdir(parents=True, exist_ok=True)
    wanted, bases, parents = _index_manifest(graphs, selected)

    full = delta = skipped = repaired = 0
    shipped = reused = 0
    for relpath in sorted(wanted):
        key, name = wanted[relpath]
        if throttle is not None:
            throttle(relpath)
        src_path = source_root / relpath
        dst_path = follower_root / relpath
        try:
            if relpath.endswith(".bin"):
                outcome, f_shipped, f_reused = _sync_binary(
                    src_path, dst_path, follower_root,
                    _delta_candidates(relpath, key, name, bases, parents))
            else:
                outcome, f_shipped, f_reused = _sync_json(src_path,
                                                          dst_path)
        except OSError as exc:
            raise StoreError(
                f"replicating {relpath} failed ({exc}) — the source "
                f"store may have compacted mid-pass; rerun") from exc
        shipped += f_shipped
        reused += f_reused
        if outcome == "skipped":
            skipped += 1
            continue
        if outcome == "repaired-full":
            repaired += 1
            outcome = "full"
        elif outcome == "repaired-delta":
            repaired += 1
            outcome = "delta"
        if outcome == "full":
            full += 1
        else:
            delta += 1

    graphs_out: Dict = {}
    if merge:
        try:
            graphs_out = dict(read_store_manifest(follower_root)["graphs"])
        except StoreError:
            graphs_out = {}  # fresh or unreadable follower: start clean
    for key in sorted(selected):
        graphs_out[key] = graphs[key]
    _write_bytes_atomic(
        follower_root / "manifest.json",
        json.dumps({"format": _MANIFEST_FORMAT,
                    "version": _MANIFEST_VERSION,
                    "graphs": graphs_out},
                   indent=2, separators=(",", ": "),
                   sort_keys=False).encode("utf-8"))
    floors = {
        key: max(int(number) for number in graphs[key]["versions"])
        for key in sorted(selected) if graphs[key]["versions"]
    }
    return ReplicationReport(keys=len(selected), files_full=full,
                             files_delta=delta, files_skipped=skipped,
                             files_repaired=repaired,
                             bytes_shipped=shipped, bytes_reused=reused,
                             version_floors=floors)


def _sync_json(src_path: Path, dst_path: Path) -> Tuple[str, int, int]:
    """Sync one JSON artifact (whole-file; content-hash compared).

    JSON artifacts carry no internal checksum, so equality is decided
    by hashing both sides — ``scores.json`` mutates in place as hot
    thresholds accumulate, which makes a size check insufficient.
    """
    src = src_path.read_bytes()
    if dst_path.exists():
        dst = dst_path.read_bytes()
        if hashlib.sha256(dst).digest() == hashlib.sha256(src).digest():
            return "skipped", 0, len(src)
        _write_bytes_atomic(dst_path, src)
        return "repaired-full", len(src), 0
    _write_bytes_atomic(dst_path, src)
    return "full", len(src), 0


def _sync_binary(src_path: Path, dst_path: Path, follower_root: Path,
                 candidates: List[str]) -> Tuple[str, int, int]:
    """Sync one binary artifact: skip, byte-range delta, or full copy."""
    src_header_bytes, = _read_ranges(src_path, [(0, HEADER_SIZE)])
    src_header = Header.unpack(src_header_bytes, source=str(src_path))
    present = False
    if dst_path.exists():
        present = True
        try:
            dst = dst_path.read_bytes()
            dst_header = Header.unpack(dst, source=str(dst_path))
        except (OSError, ArtifactFormatError):
            dst = b""
            dst_header = None
        if dst_header is not None \
                and dst_header.checksum == src_header.checksum \
                and dst_header.file_len == len(dst) \
                and hashlib.sha256(dst[HEADER_SIZE:]).digest() \
                == dst_header.checksum:
            return "skipped", 0, len(dst)
        # Present but stale (compaction rewrote it in place) or
        # corrupt (truncated / flipped bytes): re-sync below.
    assembled = _try_delta(src_path, dst_path, src_header,
                           src_header_bytes, follower_root, candidates)
    if assembled is not None:
        shipped, reused = assembled
        return ("repaired-delta" if present else "delta"), shipped, reused
    data = src_path.read_bytes()
    if src_header.file_len != len(data) \
            or hashlib.sha256(data[HEADER_SIZE:]).digest() \
            != src_header.checksum:
        raise StoreError(f"{src_path}: source artifact fails its "
                         f"checksum; refusing to replicate corruption")
    _write_bytes_atomic(dst_path, data)
    return ("repaired-full" if present else "full"), len(data), 0
