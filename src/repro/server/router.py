""":class:`DiversityRouter`: many named graphs in one serving process.

One production process rarely serves a single graph — a deployment
hosts a fleet of social networks, each with its own update stream and
query traffic.  The router holds a registry of named
:class:`~repro.service.DiversityService` instances over one shared
:class:`~repro.service.IndexStore`, so every graph warm-starts from
(and persists to) the same artifact catalogue.

Concurrency model
-----------------
* **Reads are lock-free.**  Routing a query is one dict lookup (atomic
  in CPython) followed by the service's own lock-free snapshot read; no
  router-level lock sits on the query path.
* **Registration is serialised.**  ``add_graph`` / ``remove_graph``
  hold the registry lock; services are published into the registry
  with a single dict assignment.
* **Writes stay per-graph single-writer.**  Each service serialises
  its own updates; updates to different graphs proceed in parallel.

Examples
--------
>>> from repro.graph.graph import Graph
>>> router = DiversityRouter()
>>> _ = router.add_graph("triangle", Graph(edges=[(0, 1), (1, 2), (0, 2)]))
>>> router.top_r("triangle", 3, 1).vertices
[0]
>>> router.graphs()
['triangle']
"""

from __future__ import annotations

import re
import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import InvalidParameterError, StoreError, UnknownGraphError
from repro.graph.graph import Graph, Vertex
from repro.core.results import SearchResult
from repro.replication.feed import UpdateFeed, WireUpdate
from repro.service.service import DiversityService
from repro.service.store import CompactionReport, IndexStore
from repro.service.updates import UpdateLike, UpdateReport

#: Graph names must be URL-path-safe: they appear in ``/graphs/<name>/…``.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _wire_updates(updates: Sequence[UpdateLike]) -> List[WireUpdate]:
    """Normalise applied updates to wire shape ``(op, u, v)`` so feed
    consumers can POST them back verbatim."""
    shaped: List[WireUpdate] = []
    for update in updates:
        if hasattr(update, "op"):
            shaped.append((update.op, update.u, update.v))
        else:
            op, u, v = update
            shaped.append((op, u, v))
    return shaped


def _report_payload(report: UpdateReport) -> Dict[str, object]:
    """The JSON-able facts of one batch, as the updates endpoint words
    them (feed entries carry the same keys the POST response did)."""
    return {
        "num_updates": report.num_updates,
        "affected_vertices": sorted(report.affected_vertices, key=repr),
        "rebuilt_forests": report.rebuilt_forests,
        "invalidated_thresholds": list(report.invalidated_thresholds),
        "retained_thresholds": list(report.retained_thresholds),
        "vertex_set_changed": report.vertex_set_changed,
        "seconds": report.seconds,
    }


class DiversityRouter:
    """Route queries and updates to per-graph diversity services.

    Parameters
    ----------
    store:
        Optional shared :class:`~repro.service.IndexStore` (or a path
        to one).  Every registered graph warm-starts from it when its
        content is already catalogued and persists its artifacts into
        it otherwise.
    build_jobs:
        Worker request for every cold build and update repair of every
        registered service (see :meth:`repro.build.BuildPlan.decide`;
        ``0`` auto-plans, ``None`` keeps the legacy per-vertex build).
        One router-level knob because a fleet shares one machine — the
        plan clamps to the hardware budget either way.
    """

    def __init__(self, store: Optional[IndexStore] = None,
                 build_jobs: Optional[int] = 0) -> None:
        if store is not None and not isinstance(store, IndexStore):
            store = IndexStore(store)
        self._store = store
        self.build_jobs = build_jobs
        self._services: Dict[str, DiversityService] = {}
        self._pending: Set[str] = set()  # names mid-registration
        self._registry_lock = threading.Lock()
        #: Journal of applied update batches per graph, populated by
        #: each service's ``update_listener`` *inside its writer lock*
        #: (feed order == apply order) and served over
        #: ``GET /graphs/<name>/updates/feed`` for followers, respawned
        #: workers, and shard-move targets to replay.
        self.feed = UpdateFeed()

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    @property
    def store(self) -> Optional[IndexStore]:
        """The shared artifact store, when the router persists."""
        return self._store

    def add_graph(self, name: str, graph: Graph) -> DiversityService:
        """Register ``graph`` under ``name`` and start serving it.

        The service warm-starts when the shared store already knows
        this graph's content; otherwise it cold-builds once and
        persists.  Raises
        :class:`~repro.errors.InvalidParameterError` on a malformed or
        already-taken name.

        The (possibly expensive) index build runs *outside* the
        registry lock — the name is reserved first, so concurrent
        registrations of different graphs build in parallel and never
        block reads, removals, or each other.
        """
        if not _NAME_PATTERN.match(name or ""):
            raise InvalidParameterError(
                f"bad graph name {name!r}: use letters, digits, '.', '_' "
                "or '-' (it becomes a URL path segment)")
        with self._registry_lock:
            if name in self._services or name in self._pending:
                raise InvalidParameterError(
                    f"a graph named {name!r} is already registered")
            self._pending.add(name)  # reserve while building
        try:
            service = DiversityService.start(graph, store=self._store,
                                             build_jobs=self.build_jobs)
        except BaseException:
            with self._registry_lock:
                self._pending.discard(name)
            raise
        # Hook the feed before publishing: no update can apply through
        # the router until the service is in the registry, so every
        # routed batch is journaled.
        service.update_listener = self._feed_listener(name)
        with self._registry_lock:
            self._pending.discard(name)
            self._services[name] = service  # atomic publish
        return service

    def _feed_listener(self, name: str):
        """A per-graph hook appending applied batches to :attr:`feed`.

        The service invokes it under its writer lock, right after the
        snapshot publish — concurrent writers on one graph therefore
        journal in exactly the order their batches applied.
        """
        def on_applied(updates: Sequence[UpdateLike],
                       report: UpdateReport,
                       version: Optional[int]) -> None:
            self.feed.append(name, _wire_updates(updates),
                             version=version,
                             report=_report_payload(report))
        return on_applied

    def remove_graph(self, name: str) -> DiversityService:
        """Unregister a graph; in-flight queries on its service finish
        against the snapshot they already captured."""
        with self._registry_lock:
            try:
                service = self._services.pop(name)
            except KeyError:
                raise UnknownGraphError(name) from None
        # Unhook + forget the journal: a standalone re-use of the
        # service must not keep appending to a dropped graph's feed.
        service.update_listener = None
        self.feed.drop(name)
        return service

    def graphs(self) -> List[str]:
        """Registered graph names, sorted.

        Takes the registry lock: iterating the live dict could race a
        concurrent registration (``RuntimeError: dictionary changed
        size``).  Single-name lookups (:meth:`service`) stay lock-free.
        """
        with self._registry_lock:
            return sorted(self._services)

    def _registry_snapshot(self) -> Dict[str, DiversityService]:
        with self._registry_lock:
            return dict(self._services)

    def service(self, name: str) -> DiversityService:
        """The service for one graph name.  Raises
        :class:`~repro.errors.UnknownGraphError` when absent."""
        service = self._services.get(name)
        if service is None:
            raise UnknownGraphError(name)
        return service

    def __len__(self) -> int:
        return len(self._services)

    def __contains__(self, name: str) -> bool:
        return name in self._services

    # ------------------------------------------------------------------
    # Routed reads (lock-free: dict lookup + snapshot read)
    # ------------------------------------------------------------------
    def top_r(self, name: str, k: int, r: int,
              collect_contexts: bool = True) -> SearchResult:
        """Canonical top-r answer from one named graph."""
        return self.service(name).top_r(k, r,
                                        collect_contexts=collect_contexts)

    def top_r_many(self, name: str, queries: Sequence[Tuple[int, int]],
                   collect_contexts: bool = True) -> List[SearchResult]:
        """A batch answered from one named graph's consistent snapshot."""
        return self.service(name).top_r_many(
            queries, collect_contexts=collect_contexts)

    def score(self, name: str, v: Vertex, k: int) -> int:
        """Point lookup on one named graph."""
        return self.service(name).score(v, k)

    def contexts(self, name: str, v: Vertex, k: int) -> List[Set[Vertex]]:
        """Social contexts on one named graph."""
        return self.service(name).contexts(v, k)

    # ------------------------------------------------------------------
    # Routed writes
    # ------------------------------------------------------------------
    def apply_updates(self, name: str,
                      updates: Sequence[UpdateLike]) -> UpdateReport:
        """Apply an edge batch to one named graph (its single writer)."""
        return self.service(name).apply_updates(updates)

    def persist_scores(self, name: str) -> List[int]:
        """Persist one graph's hot score cache to the shared store."""
        return self.service(name).persist_scores()

    def compact(self) -> CompactionReport:
        """Compact the shared store (see :meth:`IndexStore.compact`).

        Safe while serving: every registered service's current lineage
        key is passed as a protected head — even one another graph's
        update stream has superseded (two names can share content, and
        only one of them may have moved on).
        """
        if self._store is None:
            raise StoreError("this router has no store to compact")
        live = {service.snapshot.key
                for service in self._registry_snapshot().values()
                if service.snapshot.key is not None}
        return self._store.compact(keep=live)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def graphs_payload(self) -> List[Dict[str, object]]:
        """Per-graph stats keyed by name (the ``GET /graphs`` body)."""
        return [dict(service.stats_payload(), name=name)
                for name, service
                in sorted(self._registry_snapshot().items())]

    def stats_payload(self) -> Dict[str, object]:
        """JSON-able fleet report (the HTTP ``/stats`` response body)."""
        graphs = {name: service.stats_payload()
                  for name, service
                  in sorted(self._registry_snapshot().items())}
        payload: Dict[str, object] = {
            "graphs": graphs,
            "queries_total": sum(entry["queries"]
                                 for entry in graphs.values()),
            "updates_total": sum(entry["updates_applied"]
                                 for entry in graphs.values()),
        }
        if self._store is not None:
            payload["store"] = {"root": str(self._store.root),
                                "keys": len(self._store.keys())}
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DiversityRouter(graphs={self.graphs()}, "
                f"store={'yes' if self._store is not None else 'no'})")
