""":class:`ServerClient`: a thin stdlib client for the HTTP front.

Tests, examples, and operators talk to a running
:class:`~repro.server.http.DiversityHTTPServer` through this wrapper —
:mod:`urllib.request` underneath, JSON in and out, HTTP error statuses
re-raised as :class:`~repro.errors.ServerError` with the server's
message attached.

Examples
--------
>>> from repro.graph.graph import Graph
>>> from repro.server.router import DiversityRouter
>>> from repro.server.http import serve
>>> router = DiversityRouter()
>>> _ = router.add_graph("g", Graph(edges=[(0, 1), (1, 2), (0, 2)]))
>>> server = serve(router, port=0)
>>> client = ServerClient(f"http://127.0.0.1:{server.server_port}")
>>> client.healthz()["status"]
'ok'
>>> server.shutdown()
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlencode

from repro.errors import ServerError

#: An update over the wire: ``(op, u, v)`` with op insert/delete.
WireUpdate = Tuple[str, object, object]


class ServerClient:
    """JSON-over-HTTP client for a diversity server.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``http://127.0.0.1:8080``.
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self._base = base_url.rstrip("/")
        self._timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 params: Optional[Dict[str, object]] = None,
                 body: Optional[object] = None) -> Dict:
        url = self._base + path
        if params:
            url += "?" + urlencode(params)
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self._timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise ServerError(exc.code, self._error_message(exc)) from exc
        except urllib.error.URLError as exc:
            raise ServerError(0, f"cannot reach {self._base}: "
                                 f"{exc.reason}") from exc

    @staticmethod
    def _error_message(exc: urllib.error.HTTPError) -> str:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            return payload.get("error", exc.reason)
        except Exception:  # non-JSON error body
            return str(exc.reason)

    # ------------------------------------------------------------------
    # API surface (one method per endpoint)
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        """Liveness probe (``GET /healthz``)."""
        return self._request("GET", "/healthz")

    def stats(self) -> Dict:
        """Whole-fleet counters (``GET /stats``)."""
        return self._request("GET", "/stats")

    def graphs(self) -> List[Dict]:
        """Registered graphs with their stats (``GET /graphs``)."""
        return self._request("GET", "/graphs")["graphs"]

    def graph_stats(self, name: str) -> Dict:
        """One graph's stats (``GET /graphs/<name>``)."""
        return self._request("GET", f"/graphs/{name}")

    def top_r(self, name: str, k: int, r: int = 10,
              contexts: bool = False) -> Dict:
        """Canonical top-r answer (``GET /graphs/<name>/top_r``).

        The returned dict's ``vertices`` and ``scores`` are exactly the
        in-process :meth:`DiversityService.top_r` answer for the same
        snapshot; ``contexts=True`` adds per-entry social contexts.
        """
        params: Dict[str, object] = {"k": k, "r": r}
        if contexts:
            params["contexts"] = 1
        return self._request("GET", f"/graphs/{name}/top_r", params=params)

    def score(self, name: str, v: object, k: int) -> int:
        """One vertex's score (``GET /graphs/<name>/score``)."""
        return self._request("GET", f"/graphs/{name}/score",
                             params={"v": v, "k": k})["score"]

    def apply_updates(self, name: str,
                      updates: Sequence[WireUpdate]) -> Dict:
        """Apply an edge batch (``POST /graphs/<name>/updates``).

        ``updates`` items are ``(op, u, v)`` tuples/lists (also accepts
        :class:`~repro.service.EdgeUpdate` objects).
        """
        wire = [[u.op, u.u, u.v] if hasattr(u, "op") else list(u)
                for u in updates]
        return self._request("POST", f"/graphs/{name}/updates",
                             body={"updates": wire})

    def persist_scores(self, name: str) -> List[int]:
        """Persist the hot score cache (``POST /graphs/<name>/scores``)."""
        return self._request(
            "POST", f"/graphs/{name}/scores")["persisted_thresholds"]

    def compact(self) -> Dict:
        """Compact the shared store (``POST /compact``)."""
        return self._request("POST", "/compact")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServerClient({self._base!r})"
