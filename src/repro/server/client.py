""":class:`ServerClient`: a thin stdlib client for the HTTP front.

Tests, examples, operators — and the cluster frontend's proxy hot path
— talk to a running :class:`~repro.server.http.DiversityHTTPServer`
through this wrapper.  The transport is a small pool of *persistent*
:class:`http.client.HTTPConnection` objects: the server speaks
HTTP/1.1 with Content-Length on every response, so one socket carries
many requests (urllib, the previous transport, opened a fresh
connection per request — fatal for a proxy that fronts every routed
query with one upstream hop).  JSON in and out, HTTP error statuses
re-raised as :class:`~repro.errors.ServerError` with the server's
message attached.

Concurrency: the pool hands each in-flight request its own connection
(created on demand when the pool is empty), so one client instance may
be shared across threads; sockets are only reused, never shared.

Examples
--------
>>> from repro.graph.graph import Graph
>>> from repro.server.router import DiversityRouter
>>> from repro.server.http import serve
>>> router = DiversityRouter()
>>> _ = router.add_graph("g", Graph(edges=[(0, 1), (1, 2), (0, 2)]))
>>> server = serve(router, port=0)
>>> client = ServerClient(f"http://127.0.0.1:{server.server_port}")
>>> client.healthz()["status"]
'ok'
>>> client.top_r("g", k=3, r=1)["vertices"]  # same socket, second request
[0]
>>> client.connections_opened
1
>>> client.close()
>>> server.shutdown()
"""

from __future__ import annotations

import hashlib
import http.client
import json
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlencode, urlsplit

from repro.errors import ServerError

#: An update over the wire: ``(op, u, v)`` with op insert/delete.
WireUpdate = Tuple[str, object, object]

#: Connection failures that mean "the socket went stale under us" when
#: they surface on a *reused* connection: the server may close an idle
#: keep-alive socket at any time, so one retry on a fresh connection is
#: the standard (and safe — nothing was processed) recovery.
_STALE_ERRORS = (http.client.BadStatusLine, http.client.CannotSendRequest,
                 http.client.ResponseNotReady, http.client.IncompleteRead,
                 ConnectionResetError, ConnectionAbortedError,
                 BrokenPipeError)

#: Statuses worth another idempotent attempt: the cluster frontend
#: answers 503 (with Retry-After) while a dead worker respawns, and a
#: reverse proxy says 502 for the same transient condition.
_RETRIABLE_STATUSES = (502, 503)

#: Backoff pauses never exceed this, whatever the attempt count.
_MAX_BACKOFF = 2.0


def _retry_jitter(token: str, attempt: int) -> float:
    """Deterministic jitter in ``[0, 1)`` for one retry of one request.

    Derived from a hash, not the RNG: retry schedules must not depend
    on (or disturb) any seeded experiment randomness, yet distinct
    requests still decorrelate so a fleet of retrying clients does not
    stampede a respawning worker in lockstep.
    """
    digest = hashlib.sha256(f"{token}#{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") / 2 ** 32


class ServerClient:
    """JSON-over-HTTP client for a diversity server, with keep-alive.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``http://127.0.0.1:8080``.
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Extra attempts for **idempotent** requests (``GET``/``HEAD``)
        that fail at the connection level or answer a retriable 5xx
        (502/503 — the frontend's "worker respawning" signal).  Writes
        are never re-sent at this layer.  Default 0: one attempt, the
        historical behaviour.
    retry_backoff:
        Base pause before retry *n* is ``retry_backoff * 2**n`` seconds
        (capped at 2s), scaled by a deterministic per-request jitter in
        ``[0.5, 1.0)``.
    deadline:
        Optional per-request wall-clock budget in seconds.  Retrying
        stops once the next pause would cross it; the last failure is
        then surfaced as-is.
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retries: int = 0, retry_backoff: float = 0.05,
                 deadline: Optional[float] = None) -> None:
        self._base = base_url.rstrip("/")
        parts = urlsplit(self._base)
        if parts.scheme not in ("http", ""):
            raise ServerError(0, f"unsupported scheme in {base_url!r}: "
                                 "only http:// servers exist here")
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or 80
        # A path in base_url (server behind a prefixed reverse proxy)
        # must survive the transport: requests go to <prefix><path>.
        self._prefix = parts.path.rstrip("/")
        self._timeout = timeout
        self._retries = max(0, int(retries))
        self._retry_backoff = retry_backoff
        self._deadline = deadline
        self._pool: List[http.client.HTTPConnection] = []
        self._pool_lock = threading.Lock()
        #: Sockets this client has opened over its lifetime.  With
        #: keep-alive working, a single-threaded caller stays at 1 no
        #: matter how many requests it issues (plus one per stale-socket
        #: recovery) — the regression tests assert exactly that.
        self.connections_opened = 0

    # ------------------------------------------------------------------
    # Connection pool
    # ------------------------------------------------------------------
    def _acquire(self) -> Tuple[http.client.HTTPConnection, bool]:
        """A pooled connection and whether it has served before."""
        with self._pool_lock:
            if self._pool:
                return self._pool.pop(), True
            self.connections_opened += 1
        return http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout), False

    def _release(self, connection: http.client.HTTPConnection) -> None:
        with self._pool_lock:
            self._pool.append(connection)

    def close(self) -> None:
        """Close every pooled socket (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, []
        for connection in pool:
            connection.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request_raw(self, method: str, path: str,
                    body: Optional[bytes] = None,
                    headers: Optional[Dict[str, str]] = None,
                    ) -> Tuple[int, bytes]:
        """One round trip, bytes in and bytes out — no JSON, no raising.

        Returns ``(status, body)`` whatever the status; connection
        errors raise :class:`~repro.errors.ServerError` with status 0.
        The cluster frontend proxies through this, so a routed answer's
        body is the owning worker's body byte-for-byte.

        The stale-socket retry only re-sends when it is safe: a failure
        while *sending* on a reused connection (the server closed the
        idle socket; the request never fully left), or any failure of a
        ``GET``.  A ``POST`` that failed after transmission is NOT
        retried — the server may be mid-way through applying it, and a
        re-send could apply an update batch twice.
        """
        path = self._prefix + path
        for attempt in (0, 1):
            connection, reused = self._acquire()
            phase = "send"
            try:
                connection.request(method, path, body=body,
                                   headers=headers or {})
                phase = "read"
                response = connection.getresponse()
                payload = response.read()
            except _STALE_ERRORS + (socket.timeout, OSError) as exc:
                connection.close()
                retry_safe = phase == "send" or method in ("GET", "HEAD")
                timed_out = isinstance(exc, socket.timeout)
                if attempt == 0 and reused and retry_safe \
                        and not timed_out:
                    continue  # retry once on a fresh socket
                raise ServerError(
                    0, f"cannot reach {self._base}: {exc}") from exc
            if response.will_close:
                connection.close()
            else:
                self._release(connection)
            return response.status, payload
        raise AssertionError("unreachable")  # pragma: no cover

    def _request(self, method: str, path: str,
                 params: Optional[Dict[str, object]] = None,
                 body: Optional[object] = None) -> Dict:
        if params:
            path += "?" + urlencode(params)
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        status, payload = self._request_with_retries(method, path, data,
                                                     headers)
        if status >= 400:
            raise ServerError(status, self._error_message(payload, status))
        try:
            return json.loads(payload.decode("utf-8"))
        except ValueError as exc:
            raise ServerError(status, f"non-JSON response body: {exc}") \
                from exc

    def _request_with_retries(self, method: str, path: str,
                              data: Optional[bytes],
                              headers: Dict[str, str]) -> Tuple[int, bytes]:
        """Bounded jittered-backoff retries around :meth:`request_raw`.

        Only idempotent methods retry (a ``POST`` that died mid-flight
        may have applied — re-sending could double-apply a batch); a
        retried failure is either connection-level (``ServerError``
        status 0) or a retriable 5xx.  ``deadline`` bounds the whole
        dance: when the next backoff pause would cross it, the last
        failure surfaces unchanged.
        """
        attempts = self._retries if method in ("GET", "HEAD") else 0
        deadline = (None if self._deadline is None
                    else time.monotonic() + self._deadline)
        attempt = 0
        while True:
            error: Optional[ServerError] = None
            status, payload = 0, b""
            try:
                status, payload = self.request_raw(method, path, body=data,
                                                   headers=headers)
            except ServerError as exc:
                error = exc
            if error is None and status not in _RETRIABLE_STATUSES:
                return status, payload
            pause = min(self._retry_backoff * 2 ** attempt, _MAX_BACKOFF)
            pause *= 0.5 + _retry_jitter(path, attempt) / 2.0
            out_of_time = (deadline is not None
                           and time.monotonic() + pause >= deadline)
            if attempt >= attempts or out_of_time:
                if error is not None:
                    raise error
                return status, payload
            time.sleep(pause)
            attempt += 1

    @staticmethod
    def _error_message(payload: bytes, status: int) -> str:
        try:
            return json.loads(payload.decode("utf-8")).get(
                "error", f"status {status}")
        except (ValueError, AttributeError):  # non-JSON error body
            return payload.decode("utf-8", "replace") or f"status {status}"

    # ------------------------------------------------------------------
    # API surface (one method per endpoint)
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        """Liveness probe (``GET /healthz``)."""
        return self._request("GET", "/healthz")

    def stats(self) -> Dict:
        """Whole-fleet counters (``GET /stats``)."""
        return self._request("GET", "/stats")

    def graphs(self) -> List[Dict]:
        """Registered graphs with their stats (``GET /graphs``)."""
        return self._request("GET", "/graphs")["graphs"]

    def graph_stats(self, name: str) -> Dict:
        """One graph's stats (``GET /graphs/<name>``)."""
        return self._request("GET", f"/graphs/{name}")

    def top_r(self, name: str, k: int, r: int = 10,
              contexts: bool = False) -> Dict:
        """Canonical top-r answer (``GET /graphs/<name>/top_r``).

        The returned dict's ``vertices`` and ``scores`` are exactly the
        in-process :meth:`DiversityService.top_r` answer for the same
        snapshot; ``contexts=True`` adds per-entry social contexts.
        """
        params: Dict[str, object] = {"k": k, "r": r}
        if contexts:
            params["contexts"] = 1
        return self._request("GET", f"/graphs/{name}/top_r", params=params)

    def score(self, name: str, v: object, k: int) -> int:
        """One vertex's score (``GET /graphs/<name>/score``)."""
        return self._request("GET", f"/graphs/{name}/score",
                             params={"v": v, "k": k})["score"]

    def update_feed(self, name: str, since: int = 0,
                    timeout: float = 0.0) -> Dict:
        """Applied batches after ``since``
        (``GET /graphs/<name>/updates/feed``).

        ``timeout`` long-polls: the server parks the request up to that
        many seconds (clamped server-side below the socket timeout)
        waiting for the graph to advance.  The reply carries
        ``entries`` (each with ``seq``, wire-shaped ``updates``, and
        the post-apply ``version``), ``last_seq``, and ``complete`` —
        ``False`` means the journal no longer reaches back to ``since``
        and the consumer must fall back to a full store resync.
        """
        params: Dict[str, object] = {"since": since}
        if timeout:
            params["timeout"] = timeout
        return self._request("GET", f"/graphs/{name}/updates/feed",
                             params=params)

    def apply_updates(self, name: str,
                      updates: Sequence[WireUpdate]) -> Dict:
        """Apply an edge batch (``POST /graphs/<name>/updates``).

        ``updates`` items are ``(op, u, v)`` tuples/lists (also accepts
        :class:`~repro.service.EdgeUpdate` objects).
        """
        wire = [[u.op, u.u, u.v] if hasattr(u, "op") else list(u)
                for u in updates]
        return self._request("POST", f"/graphs/{name}/updates",
                             body={"updates": wire})

    def truncate_feed(self, name: str, *, version: Optional[int] = None,
                      seq: Optional[int] = None) -> Dict:
        """Checkpoint the update feed
        (``POST /graphs/<name>/updates/feed/truncate``).

        Drops journaled batches covered by a durably shipped store
        ``version`` (or an explicit feed ``seq``); lagging consumers
        past the new floor see ``complete=False`` and must resync.
        """
        body: Dict[str, object] = {}
        if version is not None:
            body["version"] = version
        if seq is not None:
            body["seq"] = seq
        return self._request(
            "POST", f"/graphs/{name}/updates/feed/truncate", body=body)

    def persist_scores(self, name: str) -> List[int]:
        """Persist the hot score cache (``POST /graphs/<name>/scores``)."""
        return self._request(
            "POST", f"/graphs/{name}/scores")["persisted_thresholds"]

    def compact(self) -> Dict:
        """Compact the shared store (``POST /compact``)."""
        return self._request("POST", "/compact")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServerClient({self._base!r})"
