"""Stdlib-only HTTP front over a :class:`DiversityRouter`.

The serve-many-queries regime the paper motivates needs a network
boundary; this module provides one with nothing beyond
:mod:`http.server` — a :class:`ThreadingHTTPServer` whose handler maps
a small JSON API onto the router:

=========  =============================  =====================================
Method     Path                           Meaning
=========  =============================  =====================================
``GET``    ``/healthz``                   liveness probe
``GET``    ``/graphs``                    registered graphs + per-graph stats
``GET``    ``/graphs/<name>``             one graph's stats
``GET``    ``/graphs/<name>/top_r``       canonical top-r (``k``, ``r``,
                                          optional ``contexts=1``)
``GET``    ``/graphs/<name>/score``       one vertex's score (``v``, ``k``)
``GET``    ``/graphs/<name>/updates/feed``  applied batches after ``since``
                                          (long-poll via ``timeout``)
``POST``   ``/graphs/<name>/updates``     apply an edge batch
``POST``   ``/graphs/<name>/updates/feed/truncate``  checkpoint the feed
                                          (``{"version": N}`` or ``{"seq": N}``)
``POST``   ``/graphs/<name>/scores``      persist the hot score cache
``POST``   ``/compact``                   compact the shared store
``GET``    ``/stats``                     whole-fleet counters
=========  =============================  =====================================

Every response body is JSON.  Errors come back as
``{"error": "<message>"}`` with the status mapped from the library's
exception hierarchy (unknown graph → 404, invalid parameters → 400,
store misuse → 409).

Answer fidelity: ``top_r`` responses carry exactly the vertices and
scores of the in-process :meth:`DiversityService.top_r` for the same
snapshot — each ThreadingHTTPServer worker thread reads the lock-free
snapshot the same way an in-process caller would.

Examples
--------
>>> from repro.graph.graph import Graph
>>> from repro.server.router import DiversityRouter
>>> router = DiversityRouter()
>>> _ = router.add_graph("g", Graph(edges=[(0, 1), (1, 2), (0, 2)]))
>>> server = serve(router, port=0)          # ephemeral port
>>> from repro.server.client import ServerClient
>>> client = ServerClient(f"http://127.0.0.1:{server.server_port}")
>>> client.top_r("g", k=3, r=1)["vertices"]
[0]
>>> server.shutdown()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.errors import (
    GraphError,
    InvalidParameterError,
    ReproError,
    StoreError,
    UnknownGraphError,
)
from repro.core.results import SearchResult
from repro.server.router import DiversityRouter


def parse_vertex(raw: str) -> object:
    """Vertex labels over the wire: integers when they look like one
    (the same convention the CLI uses)."""
    try:
        return int(raw)
    except ValueError:
        return raw


def result_payload(result: SearchResult,
                   include_contexts: bool = False) -> Dict[str, object]:
    """JSON-able form of a :class:`SearchResult`.

    ``vertices`` and ``scores`` mirror the in-process properties
    byte-for-byte once JSON-encoded; contexts (sets) are serialised as
    repr-sorted member lists for deterministic bytes.
    """
    payload: Dict[str, object] = {
        "method": result.method,
        "k": result.k,
        "r": result.r,
        "vertices": result.vertices,
        "scores": result.scores,
        "search_space": result.search_space,
        "elapsed_seconds": result.elapsed_seconds,
    }
    if include_contexts:
        payload["entries"] = [
            {"vertex": entry.vertex, "score": entry.score,
             "contexts": [sorted(context, key=repr)
                          for context in entry.contexts]}
            for entry in result.entries]
    return payload


def _coerce_updates(body: object) -> List[Tuple[str, object, object]]:
    """Accept ``{"updates": [...]}`` or a bare list of ``[op, u, v]``.

    List-shaped endpoints become tuples — JSON has no tuple, so a
    tuple-labelled vertex arrives as a list, exactly as in
    :func:`repro.graph.io.graph_from_payload` (and a genuine list label
    cannot exist: labels must be hashable).
    """
    if isinstance(body, dict):
        body = body.get("updates")
    if not isinstance(body, list):
        raise InvalidParameterError(
            'expected {"updates": [[op, u, v], ...]} or a bare list')
    updates = []
    for item in body:
        if not isinstance(item, (list, tuple)) or len(item) != 3:
            raise InvalidParameterError(
                f"bad update item {item!r}: expected [op, u, v]")
        op, u, v = item
        updates.append((op,
                        tuple(u) if isinstance(u, list) else u,
                        tuple(v) if isinstance(v, list) else v))
    return updates


class DiversityRequestHandler(BaseHTTPRequestHandler):
    """Maps the JSON API onto the owning server's router."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # Keep-alive exposes the Nagle + delayed-ACK stall: a response is
    # two small writes (header buffer, body), and with the connection
    # staying open nothing forces the second packet out — each request
    # pays a ~40ms ACK timeout.  TCP_NODELAY removes it.
    disable_nagle_algorithm = True

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):  # pragma: no cover
            super().log_message(format, *args)

    @property
    def router(self) -> DiversityRouter:
        return self.server.router

    def _respond(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _drain_body(self) -> bytes:
        """Read the declared request body unconditionally.

        Keep-alive (HTTP/1.1) requires it: a body left unread in the
        socket becomes the *next* request's request line, desyncing
        every later exchange on the connection — so draining cannot be
        left to the routes that happen to want a body.
        """
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            # An undeclared body length cannot be drained, so the
            # connection must not be reused after the 400.
            self.close_connection = True
            raise InvalidParameterError(
                f"bad Content-Length header: "
                f"{self.headers.get('Content-Length')!r}") from None
        return self.rfile.read(length) if length > 0 else b""

    def _read_body(self) -> object:
        if not self._raw_body:
            return None
        try:
            return json.loads(self._raw_body.decode("utf-8"))
        except ValueError as exc:
            raise InvalidParameterError(
                f"request body is not valid JSON ({exc})") from exc

    @staticmethod
    def _int_param(params: Dict[str, str], name: str,
                   default: Optional[int] = None) -> int:
        raw = params.get(name)
        if raw is None:
            if default is None:
                raise InvalidParameterError(
                    f"missing required query parameter {name!r}")
            return default
        try:
            return int(raw)
        except ValueError:
            raise InvalidParameterError(
                f"query parameter {name}={raw!r} is not an integer"
            ) from None

    # -- dispatch ------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        parsed = urlsplit(self.path)
        segments = [s for s in parsed.path.split("/") if s]
        params = dict(parse_qsl(parsed.query))
        try:
            self._raw_body = self._drain_body()
            handled = self._route(method, segments, params)
        except UnknownGraphError as exc:
            # KeyError.__str__ reprs its argument; unwrap for clean JSON.
            self._respond(404, {"error": str(exc.args[0])})
        except (InvalidParameterError, GraphError) as exc:
            self._respond(400, {"error": str(exc)})
        except StoreError as exc:
            self._respond(409, {"error": str(exc)})
        except ReproError as exc:  # pragma: no cover - safety net
            self._respond(500, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover; repro-lint: disable=RL003 -- handler threads must outlive any single bad request
            self._respond(500, {"error": f"internal error: {exc}"})
        else:
            if not handled:
                self._respond(404, {"error": f"no such endpoint: "
                                             f"{method} {parsed.path}"})

    def _route(self, method: str, segments: List[str],
               params: Dict[str, str]) -> bool:
        router = self.router
        if method == "GET" and segments == ["healthz"]:
            self._respond(200, {"status": "ok",
                                "graphs": len(router)})
            return True
        if method == "GET" and segments == ["stats"]:
            self._respond(200, router.stats_payload())
            return True
        if method == "GET" and segments == ["graphs"]:
            self._respond(200, {"graphs": router.graphs_payload()})
            return True
        if method == "POST" and segments == ["compact"]:
            self._respond(200, router.compact().to_payload())
            return True
        if len(segments) >= 2 and segments[0] == "graphs":
            return self._route_graph(method, segments[1], segments[2:],
                                     params)
        return False

    def _route_graph(self, method: str, name: str, rest: List[str],
                     params: Dict[str, str]) -> bool:
        router = self.router
        if method == "GET" and rest == []:
            self._respond(200, dict(router.service(name).stats_payload(),
                                    name=name))
            return True
        if method == "GET" and rest == ["top_r"]:
            k = self._int_param(params, "k")
            r = self._int_param(params, "r", default=10)
            include_contexts = params.get(
                "contexts", "0").lower() in ("1", "true", "yes", "on")
            result = router.top_r(name, k, r,
                                  collect_contexts=include_contexts)
            payload = result_payload(result,
                                     include_contexts=include_contexts)
            payload["graph"] = name
            self._respond(200, payload)
            return True
        if method == "GET" and rest == ["score"]:
            raw = params.get("v")
            if raw is None:
                raise InvalidParameterError(
                    "missing required query parameter 'v'")
            vertex = parse_vertex(raw)
            k = self._int_param(params, "k")
            score = router.score(name, vertex, k)
            self._respond(200, {"graph": name, "vertex": vertex,
                                "k": k, "score": score})
            return True
        if method == "GET" and rest == ["updates", "feed"]:
            router.service(name)  # 404 for unregistered graphs
            since = self._int_param(params, "since", default=0)
            raw_timeout = params.get("timeout", "0")
            try:
                # Clamp below the pooled client's 30s socket timeout so
                # an idle long-poll answers before the caller gives up.
                timeout = min(max(float(raw_timeout), 0.0), 25.0)
            except ValueError:
                raise InvalidParameterError(
                    f"query parameter timeout={raw_timeout!r} is not "
                    f"a number") from None
            if timeout > 0:
                entries, last, complete = self.router.feed.wait(
                    name, since, timeout)
            else:
                entries, last, complete = self.router.feed.since(
                    name, since)
            self._respond(200, {
                "graph": name,
                "since": since,
                "last_seq": last,
                "complete": complete,
                "entries": [entry.to_payload() for entry in entries],
            })
            return True
        if method == "POST" and rest == ["updates"]:
            updates = _coerce_updates(self._read_body())
            report = router.apply_updates(name, updates)
            # One snapshot read keeps version and key from the same
            # post-apply state (the cluster journals both together).
            snapshot = router.service(name).snapshot
            self._respond(200, {
                "graph": name,
                "num_updates": report.num_updates,
                "affected_vertices": sorted(report.affected_vertices,
                                            key=repr),
                "rebuilt_forests": report.rebuilt_forests,
                "invalidated_thresholds": list(
                    report.invalidated_thresholds),
                "retained_thresholds": list(report.retained_thresholds),
                "vertex_set_changed": report.vertex_set_changed,
                "seconds": report.seconds,
                "version": snapshot.version,
                "key": snapshot.key,
            })
            return True
        if method == "POST" and rest == ["updates", "feed", "truncate"]:
            router.service(name)  # 404 for unregistered graphs
            body = self._read_body()
            if not isinstance(body, dict):
                raise InvalidParameterError(
                    'expected {"version": N} or {"seq": N}')
            if body.get("version") is not None:
                dropped = self.router.feed.truncate_version(
                    name, int(body["version"]))
            elif body.get("seq") is not None:
                dropped = self.router.feed.truncate(name, int(body["seq"]))
            else:
                raise InvalidParameterError(
                    'expected {"version": N} or {"seq": N}')
            self._respond(200, {
                "graph": name,
                "dropped": dropped,
                "last_seq": self.router.feed.last_seq(name),
            })
            return True
        if method == "POST" and rest == ["scores"]:
            thresholds = router.persist_scores(name)
            self._respond(200, {"graph": name,
                                "persisted_thresholds": thresholds})
            return True
        return False


class DiversityHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one router.

    Worker threads serve concurrently; reads are lock-free all the way
    down (thread → router dict lookup → snapshot reference), so a slow
    reader never blocks an update and vice versa.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], router: DiversityRouter,
                 quiet: bool = True, handler_class=None) -> None:
        # handler_class lets the cluster's worker processes bolt their
        # private /admin routes onto this same server without forking it.
        super().__init__(address, handler_class or DiversityRequestHandler)
        self.router = router
        self.quiet = quiet


def serve(router: DiversityRouter, port: int, host: str = "127.0.0.1",
          quiet: bool = True, in_thread: bool = True) -> DiversityHTTPServer:
    """Start serving ``router`` over HTTP; returns the live server.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_port``).  With ``in_thread`` (the default) the
    accept loop runs on a daemon thread and the call returns
    immediately — call ``server.shutdown()`` to stop; otherwise the
    caller runs ``serve_forever`` itself.
    """
    server = DiversityHTTPServer((host, port), router, quiet=quiet)
    if in_thread:
        thread = threading.Thread(target=server.serve_forever,
                                  name="repro-serve", daemon=True)
        thread.start()
    return server
