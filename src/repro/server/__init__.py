"""Network serving: multi-graph routing + a stdlib-only HTTP front.

The server package is the network boundary over the service layer —
what turns the paper's indexes into something remote clients can hit:

* :mod:`repro.server.router` — :class:`DiversityRouter`, many named
  graphs in one process (per-graph
  :class:`~repro.service.DiversityService`, one shared
  :class:`~repro.service.IndexStore`, lock-free routed reads,
  per-graph single-writer updates);
* :mod:`repro.server.http` — :class:`DiversityHTTPServer`, a
  :class:`~http.server.ThreadingHTTPServer` JSON API
  (``GET /graphs/<name>/top_r``, ``POST /graphs/<name>/updates``,
  ``POST /compact``, ``/healthz``, ``/stats``, …) exposed on the CLI
  as ``repro serve --http PORT``;
* :mod:`repro.server.client` — :class:`ServerClient`, the urllib
  wrapper tests and examples drive the API with.

HTTP answers uphold the canonical ranking contract: a ``top_r``
response's vertices and scores are identical to the in-process
:meth:`DiversityService.top_r` for the same snapshot.
"""

from repro.server.router import DiversityRouter
from repro.server.http import (
    DiversityHTTPServer,
    DiversityRequestHandler,
    result_payload,
    serve,
)
from repro.server.client import ServerClient

__all__ = [
    "DiversityHTTPServer",
    "DiversityRequestHandler",
    "DiversityRouter",
    "ServerClient",
    "result_payload",
    "serve",
]
