"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch a single base class.  Programming errors (wrong types, invalid
parameters) raise the more specific subclasses below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural error on a graph operation (e.g. self-loop insertion)."""


class VertexNotFoundError(GraphError, KeyError):
    """A referenced vertex is not present in the graph."""

    def __init__(self, vertex):
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge is not present in the graph."""

    def __init__(self, u, v):
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class InvalidParameterError(ReproError, ValueError):
    """A query or construction parameter is out of its valid range."""


class IndexFormatError(ReproError):
    """A persisted index file is malformed or has an unsupported version."""


class StoreError(ReproError):
    """An :class:`~repro.service.store.IndexStore` operation failed
    (unknown graph, missing version, or a corrupt manifest)."""


class ArtifactFormatError(StoreError):
    """A binary index artifact is unreadable: bad magic, unsupported
    format version, truncation, or a failed checksum/bounds check.
    Subclasses :class:`StoreError` so store callers need no new
    ``except`` arms."""

    def __init__(self, source, reason: str):
        super().__init__(f"{source}: {reason}")
        self.source = str(source)
        self.reason = reason


class UnknownGraphError(ReproError, KeyError):
    """A :class:`~repro.server.router.DiversityRouter` has no graph
    registered under the requested name."""

    def __init__(self, name):
        super().__init__(f"no graph named {name!r} is registered")
        self.name = name


class ServerError(ReproError):
    """An HTTP request to a diversity server failed.  Carries the
    response ``status`` and the server's error ``message``."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ClusterError(ReproError):
    """A :class:`~repro.cluster.ShardedCluster` operation failed
    (bad worker count, a worker that never came up, use before start)."""
