"""Influence propagation: IC simulation, seed selection, experiments."""

from repro.influence.ic import (
    simulate_cascade,
    monte_carlo_spread,
    activation_probabilities,
    activation_rounds,
)
from repro.influence.seeds import (
    top_degree_seeds,
    degree_discount_seeds,
    ris_seeds,
    celf_seeds,
)
from repro.influence.contagion import (
    ScoreGroupRate,
    partition_by_score,
    activation_rate_by_score_group,
    activated_among_targets,
    latency_curve,
    center_activation_probability,
)
from repro.influence.lt import (
    simulate_lt_cascade,
    lt_activation_probabilities,
    lt_monte_carlo_spread,
)

__all__ = [
    "simulate_lt_cascade",
    "lt_activation_probabilities",
    "lt_monte_carlo_spread",
    "simulate_cascade",
    "monte_carlo_spread",
    "activation_probabilities",
    "activation_rounds",
    "top_degree_seeds",
    "degree_discount_seeds",
    "ris_seeds",
    "celf_seeds",
    "ScoreGroupRate",
    "partition_by_score",
    "activation_rate_by_score_group",
    "activated_among_targets",
    "latency_curve",
    "center_activation_probability",
]
