"""Influence maximization — seed selection for the contagion experiments.

The paper seeds its cascades with 50 vertices chosen by the IMM
algorithm [Tang et al., SIGMOD'15].  IMM's core idea is reverse
influence sampling (RIS): sample reverse-reachable (RR) sets and greedily
cover them.  :func:`ris_seeds` implements that sampling + greedy
max-coverage scheme (with a fixed sample budget instead of IMM's
martingale stopping rule — the output contract, a high-influence seed
set, is the same).  Cheaper heuristics (:func:`top_degree_seeds`,
:func:`degree_discount_seeds`) and the classic lazy-greedy
:func:`celf_seeds` are provided for comparison and for tests.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Sequence, Set

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex
from repro.influence.ic import monte_carlo_spread


def top_degree_seeds(graph: Graph, count: int) -> List[Vertex]:
    """The ``count`` highest-degree vertices (ties by insertion order)."""
    if count < 0:
        raise InvalidParameterError(f"count must be >= 0, got {count}")
    index = graph.vertex_index
    ranked = sorted(graph.vertices(), key=lambda v: (-graph.degree(v), index(v)))
    return ranked[:count]


def degree_discount_seeds(graph: Graph, count: int, p: float) -> List[Vertex]:
    """Degree-discount heuristic [Chen et al., KDD'09].

    Each time a neighbour is seeded, a vertex's effective degree is
    discounted by ``1 + (d - 2t) t p`` where ``t`` counts seeded
    neighbours — near-greedy quality at a tiny fraction of the cost.
    """
    if count < 0:
        raise InvalidParameterError(f"count must be >= 0, got {count}")
    index = graph.vertex_index
    degrees: Dict[Vertex, int] = {v: graph.degree(v) for v in graph.vertices()}
    seeded_neighbors: Dict[Vertex, int] = {v: 0 for v in graph.vertices()}
    # Max-heap on (discounted degree, -insertion index); lazily refreshed.
    heap = [(-degrees[v], index(v), v) for v in graph.vertices()]
    heapq.heapify(heap)
    discount: Dict[Vertex, float] = {v: float(degrees[v]) for v in graph.vertices()}
    chosen: List[Vertex] = []
    in_seed: Set[Vertex] = set()
    while heap and len(chosen) < count:
        neg_score, _, v = heapq.heappop(heap)
        if v in in_seed:
            continue
        if -neg_score > discount[v]:  # stale entry
            heapq.heappush(heap, (-discount[v], index(v), v))
            continue
        chosen.append(v)
        in_seed.add(v)
        for u in graph.neighbors(v):
            if u in in_seed:
                continue
            seeded_neighbors[u] += 1
            t = seeded_neighbors[u]
            d = degrees[u]
            discount[u] = d - 2 * t - (d - t) * t * p
            heapq.heappush(heap, (-discount[u], index(u), u))
    return chosen


def _sample_rr_set(graph: Graph, p: float, rng: random.Random,
                   vertices: Sequence[Vertex]) -> Set[Vertex]:
    """One reverse-reachable set under the IC model.

    On an undirected graph with symmetric probabilities, the reverse
    process is a plain probabilistic BFS from a uniform root: each edge
    is live with probability ``p``, and the RR set is every vertex with
    a live path to the root.
    """
    root = rng.choice(vertices)
    reached = {root}
    frontier = [root]
    index = graph.vertex_index
    while frontier:
        next_frontier: List[Vertex] = []
        for u in frontier:
            for v in sorted(graph.neighbors(u), key=index):
                if v not in reached and rng.random() < p:
                    reached.add(v)
                    next_frontier.append(v)
        frontier = next_frontier
    return reached


def ris_seeds(graph: Graph, count: int, p: float,
              num_samples: int = 2000, seed: int = 0) -> List[Vertex]:
    """RIS/IMM-style seed selection: sample RR sets, greedily cover them.

    A vertex's coverage of RR sets is an unbiased estimator of its
    influence; greedy max-coverage therefore approximates the influence
    maximisation optimum (the guarantee IMM formalises with adaptive
    sample sizes — here the budget is fixed and documented).
    """
    if count < 0:
        raise InvalidParameterError(f"count must be >= 0, got {count}")
    if num_samples < 1:
        raise InvalidParameterError(f"num_samples must be >= 1, got {num_samples}")
    vertices = list(graph.vertices())
    if not vertices:
        return []
    rng = random.Random(seed)
    rr_sets: List[Set[Vertex]] = [
        _sample_rr_set(graph, p, rng, vertices) for _ in range(num_samples)
    ]
    # Inverted index: vertex -> RR-set ids containing it.
    membership: Dict[Vertex, List[int]] = {}
    for i, rr in enumerate(rr_sets):
        for v in rr:
            membership.setdefault(v, []).append(i)
    covered: Set[int] = set()
    chosen: List[Vertex] = []
    index = graph.vertex_index
    coverage: Dict[Vertex, int] = {v: len(ids) for v, ids in membership.items()}
    for _ in range(min(count, len(vertices))):
        best = None
        best_key = None
        for v, ids in membership.items():
            if v in chosen:
                continue
            gain = coverage[v]
            key = (-gain, index(v))
            if best_key is None or key < best_key:
                best, best_key = v, key
        if best is None or coverage.get(best, 0) == 0:
            # All RR sets covered: fall back to degree for the remainder.
            for v in top_degree_seeds(graph, len(vertices)):
                if v not in chosen:
                    chosen.append(v)
                    if len(chosen) >= count:
                        break
            break
        chosen.append(best)
        newly = [i for i in membership[best] if i not in covered]
        covered.update(newly)
        for i in newly:
            for v in rr_sets[i]:
                coverage[v] -= 1
    return chosen[:count]


def celf_seeds(graph: Graph, count: int, p: float,
               runs: int = 200, seed: int = 0) -> List[Vertex]:
    """CELF lazy-greedy with Monte-Carlo spread estimation.

    Exact-greedy quality but expensive; intended for small graphs and
    for validating the cheaper selectors in tests.
    """
    if count < 0:
        raise InvalidParameterError(f"count must be >= 0, got {count}")
    vertices = list(graph.vertices())
    chosen: List[Vertex] = []
    base_spread = 0.0
    index = graph.vertex_index
    # (negated marginal gain, insertion index, vertex, round evaluated)
    heap = []
    for v in vertices:
        gain = monte_carlo_spread(graph, [v], p, runs=runs, seed=seed)
        heap.append((-gain, index(v), v, 0))
    heapq.heapify(heap)
    while heap and len(chosen) < count:
        neg_gain, idx, v, evaluated = heapq.heappop(heap)
        if evaluated == len(chosen):
            chosen.append(v)
            base_spread += -neg_gain
        else:
            spread = monte_carlo_spread(graph, chosen + [v], p,
                                        runs=runs, seed=seed)
            heapq.heappush(heap, (-(spread - base_spread), idx, v, len(chosen)))
    return chosen
