"""Contagion experiment drivers (paper Exp-7, Exp-8, Exp-9, Exp-12).

These functions turn raw IC simulations into exactly the series the
paper's effectiveness figures plot:

* :func:`activation_rate_by_score_group` — Figure 13: partition vertices
  into score intervals, report each group's activation rate.
* :func:`activated_among_targets` — Figure 14: how many of a model's
  top-r vertices a fixed seed set activates.
* :func:`latency_curve` — Figure 15: average number of rounds needed to
  activate the first x of a model's top-100 vertices.
* :func:`center_activation_probability` — Table 5: probability that an
  ego-network's center is activated by random neighbour seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex
from repro.graph.egonet import ego_network
from repro.influence.ic import (
    activation_probabilities,
    activation_rounds,
    simulate_cascade,
)


@dataclass(frozen=True)
class ScoreGroupRate:
    """One bar of the Figure 13 plot."""

    low: int
    high: int
    num_vertices: int
    activated_rate: float

    @property
    def label(self) -> str:
        return f"[{self.low},{self.high}]"


def partition_by_score(scores: Dict[Vertex, int],
                       num_groups: int = 4) -> List[List[Vertex]]:
    """Split positive-score vertices into at most ``num_groups`` intervals.

    Mirrors the paper's grouping (e.g. [1,2], [3,4], [5,8], [9,14] on
    Gowalla): contiguous *score intervals* with roughly balanced
    population.  Group boundaries always fall between distinct score
    values — vertices with equal scores are never split across groups,
    so a heavily tied distribution simply yields fewer groups.
    Zero-score vertices are excluded (no social context to speak of).
    """
    if num_groups < 1:
        raise InvalidParameterError(f"num_groups must be >= 1, got {num_groups}")
    by_value: Dict[int, List[Vertex]] = {}
    for v, s in scores.items():
        if s > 0:
            by_value.setdefault(s, []).append(v)
    if not by_value:
        return []
    total = sum(len(vs) for vs in by_value.values())
    target = total / num_groups
    groups: List[List[Vertex]] = []
    current: List[Vertex] = []
    remaining_values = sorted(by_value)
    for i, value in enumerate(remaining_values):
        current.extend(by_value[value])
        remaining_values_after = len(remaining_values) - i - 1
        # Close the group once it reaches its population share, as long
        # as at least one score value remains for the next group and
        # the final group slot stays open to absorb the tail.
        if (len(current) >= target and remaining_values_after >= 1
                and len(groups) < num_groups - 1):
            groups.append(current)
            current = []
    if current:
        groups.append(current)
    return groups


def activation_rate_by_score_group(graph: Graph, scores: Dict[Vertex, int],
                                   seeds: Sequence[Vertex], p: float,
                                   num_groups: int = 4, runs: int = 500,
                                   seed: int = 0) -> List[ScoreGroupRate]:
    """Exp-7: activation rate per score-interval group.

    Returns one :class:`ScoreGroupRate` per group, low scores first —
    the paper's finding is that the rate increases with the interval.
    """
    groups = partition_by_score(scores, num_groups)
    if not groups:
        return []
    all_targets = [v for group in groups for v in group]
    probs = activation_probabilities(graph, list(seeds), p,
                                     targets=all_targets, runs=runs, seed=seed)
    result: List[ScoreGroupRate] = []
    for group in groups:
        rate = sum(probs[v] for v in group) / len(group)
        group_scores = [scores[v] for v in group]
        result.append(ScoreGroupRate(
            low=min(group_scores), high=max(group_scores),
            num_vertices=len(group), activated_rate=rate,
        ))
    return result


def activated_among_targets(graph: Graph, targets: Sequence[Vertex],
                            seeds: Sequence[Vertex], p: float,
                            runs: int = 500, seed: int = 0) -> float:
    """Exp-8: expected number of ``targets`` activated by ``seeds``."""
    if runs < 1:
        raise InvalidParameterError(f"runs must be >= 1, got {runs}")
    rng = random.Random(seed)
    target_set = set(targets)
    total = 0
    for _ in range(runs):
        active = simulate_cascade(graph, list(seeds), p, rng)
        total += sum(1 for t in target_set if t in active)
    return total / runs


def latency_curve(graph: Graph, targets: Sequence[Vertex],
                  seeds: Sequence[Vertex], p: float,
                  runs: int = 500, seed: int = 0,
                  min_support: float = 0.25) -> List[Tuple[int, float]]:
    """Exp-9: mean rounds to activate the first ``x`` targets, per ``x``.

    For each run the sorted activation rounds of the targets give the
    round at which the x-th target fell; points supported by fewer than
    ``min_support`` of the runs are dropped (the tail is noise).
    Returns ``(x, mean_round)`` pairs with x ascending.
    """
    per_run = activation_rounds(graph, list(seeds), p, list(targets),
                                runs=runs, seed=seed)
    max_x = max((len(rounds) for rounds in per_run), default=0)
    curve: List[Tuple[int, float]] = []
    for x in range(1, max_x + 1):
        samples = [rounds[x - 1] for rounds in per_run if len(rounds) >= x]
        if len(samples) < min_support * len(per_run):
            break
        curve.append((x, sum(samples) / len(samples)))
    return curve


def center_activation_probability(graph: Graph, center: Vertex, p: float,
                                  num_seeds: int = 10, runs: int = 1000,
                                  seed: int = 0) -> float:
    """Exp-12 / Table 5: probability the ego center catches the contagion.

    Builds ``H* = G_N(center) ∪ {center}`` with the center's incident
    edges, seeds ``num_seeds`` random neighbours, and estimates the
    center's activation probability by Monte Carlo.
    """
    neighbours = sorted(graph.neighbors(center), key=graph.vertex_index)
    if not neighbours:
        return 0.0
    ego = ego_network(graph, center)
    star = ego.copy()
    for u in neighbours:
        star.add_edge(center, u)
    rng = random.Random(seed)
    chosen = rng.sample(neighbours, min(num_seeds, len(neighbours)))
    probs = activation_probabilities(star, chosen, p, targets=[center],
                                     runs=runs, seed=seed + 1)
    return probs[center]
