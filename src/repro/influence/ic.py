"""Independent cascade (IC) simulation (paper Section 7.2).

The effectiveness experiments simulate social contagion with the IC
model of Kempe et al.: when a vertex activates, it gets one independent
chance to activate each still-inactive neighbour with probability ``p``
(the paper uses a uniform ``p = 0.01`` on both directions of each
undirected edge, which collapses to a single undirected probability).

All simulation is deterministic given a seed: neighbours are visited in
insertion-index order and randomness comes from a private
``random.Random``.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"probability must be in [0,1], got {p}")


def simulate_cascade(graph: Graph, seeds: Iterable[Vertex], p: float,
                     rng: random.Random) -> Dict[Vertex, int]:
    """One IC cascade; returns the activation round of every activated vertex.

    Seeds activate at round 0.  Each newly activated vertex makes one
    activation attempt per inactive neighbour in the following round.
    """
    _check_probability(p)
    active: Dict[Vertex, int] = {}
    frontier: List[Vertex] = []
    for s in seeds:
        if s in graph and s not in active:
            active[s] = 0
            frontier.append(s)
    round_no = 0
    index = graph.vertex_index
    while frontier:
        round_no += 1
        next_frontier: List[Vertex] = []
        for u in frontier:
            for v in sorted(graph.neighbors(u), key=index):
                if v not in active and rng.random() < p:
                    active[v] = round_no
                    next_frontier.append(v)
        frontier = next_frontier
    return active


def monte_carlo_spread(graph: Graph, seeds: Sequence[Vertex], p: float,
                       runs: int = 1000, seed: int = 0) -> float:
    """Mean cascade size over ``runs`` Monte-Carlo simulations."""
    if runs < 1:
        raise InvalidParameterError(f"runs must be >= 1, got {runs}")
    rng = random.Random(seed)
    total = 0
    for _ in range(runs):
        total += len(simulate_cascade(graph, seeds, p, rng))
    return total / runs


def activation_probabilities(graph: Graph, seeds: Sequence[Vertex], p: float,
                             targets: Optional[Iterable[Vertex]] = None,
                             runs: int = 1000, seed: int = 0
                             ) -> Dict[Vertex, float]:
    """Per-target probability of being activated by ``seeds``.

    ``targets`` defaults to every vertex.  This is the Monte-Carlo
    estimator behind Exp-7 (activation rate of score groups) and Exp-12
    (activated probability of the case-study centers).
    """
    if runs < 1:
        raise InvalidParameterError(f"runs must be >= 1, got {runs}")
    target_list = list(targets) if targets is not None else list(graph.vertices())
    counts: Dict[Vertex, int] = {t: 0 for t in target_list}
    rng = random.Random(seed)
    for _ in range(runs):
        active = simulate_cascade(graph, seeds, p, rng)
        for t in target_list:
            if t in active:
                counts[t] += 1
    return {t: c / runs for t, c in counts.items()}


def activation_rounds(graph: Graph, seeds: Sequence[Vertex], p: float,
                      targets: Sequence[Vertex],
                      runs: int = 1000, seed: int = 0) -> List[List[int]]:
    """Activation rounds of the targets, one sorted list per run.

    Seeds that are themselves targets count as activated at round 0.
    Targets never activated in a run are simply absent from that run's
    list.  Raw material for the Exp-9 latency curves.
    """
    if runs < 1:
        raise InvalidParameterError(f"runs must be >= 1, got {runs}")
    rng = random.Random(seed)
    per_run: List[List[int]] = []
    target_set: Set[Vertex] = set(targets)
    for _ in range(runs):
        active = simulate_cascade(graph, seeds, p, rng)
        rounds = sorted(active[t] for t in target_set if t in active)
        per_run.append(rounds)
    return per_run
