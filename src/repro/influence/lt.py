"""Linear Threshold (LT) diffusion model.

A robustness extension beyond the paper: the paper's effectiveness
claims (Exp-7/8) are made under the independent cascade model; the LT
model of Kempe et al. is the other canonical diffusion process, and the
structural-diversity/contagion correlation should not be an IC
artefact.  `bench_ablations_lt` verifies the Figure 13 trend holds
under LT as well.

Model: every vertex draws a threshold θ ∈ [0, 1) uniformly at random;
edge weights are ``1 / d(v)`` towards each vertex ``v`` (the standard
uniform-weight instantiation); a vertex activates once the weight sum
of its active neighbours reaches its threshold.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex


def simulate_lt_cascade(graph: Graph, seeds: Iterable[Vertex],
                        rng: random.Random) -> Dict[Vertex, int]:
    """One LT cascade; returns the activation round per activated vertex.

    Seeds activate at round 0.  Each round, every inactive vertex whose
    active-neighbour weight ``|active ∩ N(v)| / d(v)`` reaches its
    (per-run random) threshold activates.  The process is monotone and
    terminates within ``|V|`` rounds.
    """
    thresholds: Dict[Vertex, float] = {}
    index = graph.vertex_index
    for v in sorted(graph.vertices(), key=index):
        thresholds[v] = rng.random()

    active: Dict[Vertex, int] = {}
    frontier: List[Vertex] = []
    for s in seeds:
        if s in graph and s not in active:
            active[s] = 0
            frontier.append(s)
    active_neighbors: Dict[Vertex, int] = {}
    round_no = 0
    while frontier:
        round_no += 1
        candidates: List[Vertex] = []
        for u in frontier:
            for v in sorted(graph.neighbors(u), key=index):
                if v in active:
                    continue
                active_neighbors[v] = active_neighbors.get(v, 0) + 1
                candidates.append(v)
        next_frontier: List[Vertex] = []
        for v in candidates:
            if v in active:
                continue
            degree = graph.degree(v)
            if degree and active_neighbors[v] / degree >= thresholds[v]:
                active[v] = round_no
                next_frontier.append(v)
        frontier = next_frontier
    return active


def lt_activation_probabilities(graph: Graph, seeds: Sequence[Vertex],
                                targets: Sequence[Vertex],
                                runs: int = 500, seed: int = 0
                                ) -> Dict[Vertex, float]:
    """Per-target activation probability under LT (Monte Carlo)."""
    if runs < 1:
        raise InvalidParameterError(f"runs must be >= 1, got {runs}")
    counts = {t: 0 for t in targets}
    rng = random.Random(seed)
    for _ in range(runs):
        active = simulate_lt_cascade(graph, seeds, rng)
        for t in targets:
            if t in active:
                counts[t] += 1
    return {t: c / runs for t, c in counts.items()}


def lt_monte_carlo_spread(graph: Graph, seeds: Sequence[Vertex],
                          runs: int = 500, seed: int = 0) -> float:
    """Mean LT cascade size over ``runs`` simulations."""
    if runs < 1:
        raise InvalidParameterError(f"runs must be >= 1, got {runs}")
    rng = random.Random(seed)
    total = 0
    for _ in range(runs):
        total += len(simulate_lt_cascade(graph, seeds, rng))
    return total / runs
