"""Random selection baseline (paper Section 7 competitor ``Random``)."""

from __future__ import annotations

import random
from typing import List, Set

from repro.graph.graph import Graph, Vertex
from repro.models.base import DiversityModel


class RandomModel(DiversityModel):
    """Select ``r`` vertices uniformly at random.

    Scores are meaningless under this model (always 0, no contexts);
    only :meth:`select` matters for the effectiveness experiments.  A
    fixed ``seed`` makes experiment runs reproducible.
    """

    name = "Random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def vertex_contexts(self, graph: Graph, v: Vertex, k: int) -> List[Set[Vertex]]:
        return []

    def select(self, graph: Graph, k: int, r: int) -> List[Vertex]:
        del k  # the random baseline ignores the threshold
        vertices = list(graph.vertices())
        rng = random.Random(self._seed)
        r = min(r, len(vertices))
        return rng.sample(vertices, r)
