"""Structural diversity models compared in the paper's experiments."""

from repro.models.base import DiversityModel
from repro.models.component import CompDivModel, component_scores
from repro.models.core import CoreDivModel
from repro.models.truss import TrussDivModel
from repro.models.random_model import RandomModel

__all__ = [
    "DiversityModel",
    "CompDivModel",
    "component_scores",
    "CoreDivModel",
    "TrussDivModel",
    "RandomModel",
]
