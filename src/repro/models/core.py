"""Core-Div: core-based structural diversity [Huang et al., VLDB J. 2015].

A social context is a maximal connected ``k``-core of the ego-network —
a maximal connected subgraph in which every vertex has degree ≥ ``k``.
The paper's introduction shows the model cannot split the H1 example
either: for ``k ≤ 3`` the whole component is one ``k``-core, for
``k ≥ 4`` it disappears.
"""

from __future__ import annotations

from typing import List, Set

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex
from repro.graph.egonet import ego_network
from repro.cores.kcore import maximal_connected_k_cores
from repro.models.base import DiversityModel


class CoreDivModel(DiversityModel):
    """Core-based structural diversity (maximal connected ``k``-cores)."""

    name = "Core-Div"

    def vertex_contexts(self, graph: Graph, v: Vertex, k: int) -> List[Set[Vertex]]:
        """Maximal connected ``k``-cores of ``G_N(v)``.

        For ``k ≥ 1`` isolated ego vertices never qualify; social
        contexts always contain at least ``k + 1`` vertices.
        """
        if k < 1:
            raise InvalidParameterError(f"core threshold k must be >= 1, got {k}")
        ego = ego_network(graph, v)
        return maximal_connected_k_cores(ego, k)
