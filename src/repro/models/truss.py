"""Truss-Div: this paper's model, wrapped in the common model interface.

Delegates to :mod:`repro.core`; when an index is supplied the expensive
per-vertex decomposition is skipped entirely, which is how the
effectiveness experiments select top-r vertices on the larger datasets.
"""

from __future__ import annotations

from typing import List, Optional, Set, Union

from repro.graph.graph import Graph, Vertex
from repro.core.diversity import social_contexts, structural_diversity
from repro.core.results import SearchResult
from repro.core.tsd import TSDIndex
from repro.core.gct import GCTIndex
from repro.models.base import DiversityModel

AnyIndex = Union[TSDIndex, GCTIndex]


class TrussDivModel(DiversityModel):
    """Truss-based structural diversity (the paper's model).

    Parameters
    ----------
    index:
        Optional prebuilt :class:`TSDIndex` or :class:`GCTIndex`; when
        present, scores, contexts and top-r all come from the index.
    """

    name = "Truss-Div"

    def __init__(self, index: Optional[AnyIndex] = None) -> None:
        self._index = index

    def vertex_contexts(self, graph: Graph, v: Vertex, k: int) -> List[Set[Vertex]]:
        if self._index is not None and v in self._index:
            return [set(c) for c in self._index.contexts(v, k)]
        return social_contexts(graph, v, k)

    def vertex_score(self, graph: Graph, v: Vertex, k: int) -> int:
        if self._index is not None and v in self._index:
            return self._index.score(v, k)
        return structural_diversity(graph, v, k)

    def top_r(self, graph: Graph, k: int, r: int,
              collect_contexts: bool = False) -> SearchResult:
        if self._index is not None:
            result = self._index.top_r(k, r, collect_contexts=collect_contexts)
            result.method = self.name
            return result
        return super().top_r(graph, k, r, collect_contexts=collect_contexts)
