"""Common interface for structural diversity models (paper Section 7).

The effectiveness experiments (Exp-7…12) compare four ways of choosing
"diverse" vertices: Random, Comp-Div (k-sized components), Core-Div
(k-cores) and Truss-Div (this paper).  All share one interface so the
influence-propagation harness can treat them uniformly.
"""

from __future__ import annotations

import abc
import time
from typing import List, Set

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex
from repro.core.results import SearchResult, TopEntry, TopRCollector


class DiversityModel(abc.ABC):
    """A structural diversity definition with top-r selection.

    Subclasses implement :meth:`vertex_contexts`; scoring and top-r
    selection derive from it.  ``name`` labels the model in experiment
    output (``Truss-Div``, ``Core-Div``, ``Comp-Div``, ``Random``).
    """

    name: str = "abstract"

    @abc.abstractmethod
    def vertex_contexts(self, graph: Graph, v: Vertex, k: int) -> List[Set[Vertex]]:
        """The social contexts of ``v`` under this model."""

    def vertex_score(self, graph: Graph, v: Vertex, k: int) -> int:
        """Number of social contexts of ``v`` (override for fast paths)."""
        return len(self.vertex_contexts(graph, v, k))

    def top_r(self, graph: Graph, k: int, r: int,
              collect_contexts: bool = False) -> SearchResult:
        """The ``r`` vertices with the most social contexts under this model."""
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        if r < 1:
            raise InvalidParameterError(f"r must be >= 1, got {r}")
        start = time.perf_counter()
        r = min(r, max(graph.num_vertices, 1))
        collector = TopRCollector(r)
        for v in graph.vertices():
            collector.offer(v, self.vertex_score(graph, v, k))
        entries = []
        for vertex, score in collector.ranked():
            contexts = (tuple(frozenset(c)
                              for c in self.vertex_contexts(graph, vertex, k))
                        if collect_contexts
                        else tuple(frozenset() for _ in range(score)))
            entries.append(TopEntry(vertex=vertex, score=score, contexts=contexts))
        return SearchResult(
            method=self.name, k=k, r=r, entries=entries,
            search_space=graph.num_vertices,
            elapsed_seconds=time.perf_counter() - start,
        )

    def select(self, graph: Graph, k: int, r: int) -> List[Vertex]:
        """Just the top-r vertices (the effectiveness experiments' input)."""
        return self.top_r(graph, k, r).vertices
