"""Comp-Div: component-based structural diversity [Ugander et al.;
Huang et al. PVLDB'13; Chang et al. ICDE'17].

A social context is a connected component of the ego-network with at
least ``k`` vertices.  The paper's motivating example shows the model's
weakness: loosely-bridged dense groups collapse into one component no
matter how ``k`` is tuned.

Besides the per-vertex definition, :func:`component_scores` implements
the scalable all-vertices pass in the spirit of Chang et al.: one global
edge scan unions, inside each ego's union-find, the endpoints of every
ego edge — each triangle is enumerated exactly once.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph, Vertex
from repro.graph.traversal import connected_components
from repro.models.base import DiversityModel
from repro.util.dsu import DisjointSet


class CompDivModel(DiversityModel):
    """Component-based structural diversity (``k``-sized components)."""

    name = "Comp-Div"

    def vertex_contexts(self, graph: Graph, v: Vertex, k: int) -> List[Set[Vertex]]:
        """Connected components of ``G_N(v)`` with ≥ ``k`` vertices."""
        if k < 1:
            raise InvalidParameterError(f"component size k must be >= 1, got {k}")
        nbrs = graph.neighbors(v)
        components = connected_components(graph, nbrs)
        return [c for c in components if len(c) >= k]

    def vertex_score(self, graph: Graph, v: Vertex, k: int) -> int:
        return len(self.vertex_contexts(graph, v, k))


def component_scores(graph: Graph, k: int) -> Dict[Vertex, int]:
    """Comp-Div score of *every* vertex via one global triangle pass.

    For each vertex ``v``, neighbours start as singletons and every ego
    edge (a triangle through ``v``) unions its endpoints; the score is
    the number of resulting components of size ≥ ``k``.  Each triangle
    is touched once per incident ego (three times total), the sharing
    trick of the scalable Comp-Div algorithm.
    """
    if k < 1:
        raise InvalidParameterError(f"component size k must be >= 1, got {k}")
    unions: Dict[Vertex, DisjointSet] = {
        v: DisjointSet(graph.neighbors(v)) for v in graph.vertices()
    }
    for u, v in graph.edges():
        nu, nv = graph.neighbors(u), graph.neighbors(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        for w in nu:
            if w in nv:
                unions[w].union(u, v)
    scores: Dict[Vertex, int] = {}
    for v, dsu in unions.items():
        scores[v] = sum(1 for root in dsu.iter_roots()
                        if dsu.component_size(root) >= k)
    return scores
