"""Visualisation exports: Graphviz DOT and ASCII summaries.

The paper's case study (Figures 16-17) renders ego-networks with each
social context highlighted.  This module produces the same artefacts as
Graphviz DOT text (renderable offline with ``dot -Tpng``) plus compact
ASCII summaries for terminals.  No drawing library is required.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.graph.graph import Graph, Vertex
from repro.graph.egonet import ego_network
from repro.core.diversity import social_contexts

#: Fill colours cycled across social contexts in DOT output.
_PALETTE = (
    "palegreen", "lightskyblue", "lightsalmon", "plum",
    "khaki", "lightpink", "aquamarine", "wheat",
)


def _quote(label: object) -> str:
    text = str(label).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{text}"'


def graph_to_dot(graph: Graph, name: str = "G",
                 highlight: Optional[Sequence[Set[Vertex]]] = None,
                 edge_labels: Optional[Dict[tuple, object]] = None) -> str:
    """Render a graph as Graphviz DOT.

    Parameters
    ----------
    graph:
        The graph to render.
    name:
        DOT graph name.
    highlight:
        Optional groups of vertices (e.g. social contexts); each group
        is filled with a cycled palette colour, everything else stays
        white — the Figure 16 visual convention.
    edge_labels:
        Optional mapping from canonical edge tuples to labels (e.g.
        trussness values, as in Figure 2(b)).
    """
    colour_of: Dict[Vertex, str] = {}
    if highlight:
        for i, group in enumerate(highlight):
            colour = _PALETTE[i % len(_PALETTE)]
            for v in group:
                colour_of[v] = colour
    lines: List[str] = [f"graph {_quote(name)} {{",
                        "  node [style=filled, fillcolor=white];"]
    for v in graph.vertices():
        colour = colour_of.get(v)
        attrs = f" [fillcolor={colour}]" if colour else ""
        lines.append(f"  {_quote(v)}{attrs};")
    for u, v in graph.edges():
        label = ""
        if edge_labels:
            value = edge_labels.get(graph.canonical_edge(u, v))
            if value is not None:
                label = f' [label="{value}"]'
        lines.append(f"  {_quote(u)} -- {_quote(v)}{label};")
    lines.append("}")
    return "\n".join(lines)


def ego_network_to_dot(graph: Graph, center: Vertex, k: int,
                       include_center: bool = False) -> str:
    """DOT rendering of ``G_N(center)`` with its k-truss contexts filled.

    Reproduces the Figure 16 artefact: one colour per maximal connected
    k-truss, bridge vertices left white.  With ``include_center`` the
    ego vertex and its spokes are added (Figure 1(a) style).
    """
    ego = ego_network(graph, center)
    contexts = social_contexts(graph, center, k, ego=ego)
    target = ego
    if include_center:
        target = ego.copy()
        for u in list(ego.vertices()):
            target.add_edge(center, u)
    return graph_to_dot(target, name=f"ego_{center}", highlight=contexts)


def contexts_summary(graph: Graph, center: Vertex, k: int,
                     max_members: int = 6) -> str:
    """ASCII one-liner-per-context summary of ``SC(center)``."""
    contexts = social_contexts(graph, center, k)
    ego = ego_network(graph, center)
    lines = [f"ego-network of {center!r}: {ego.num_vertices} vertices, "
             f"{ego.num_edges} edges; {len(contexts)} social context(s) "
             f"at k={k}"]
    for i, context in enumerate(sorted(contexts, key=len, reverse=True)):
        members = sorted(map(str, context))
        shown = ", ".join(members[:max_members])
        suffix = ", ..." if len(members) > max_members else ""
        lines.append(f"  [{i}] {len(members)} members: {shown}{suffix}")
    return "\n".join(lines)


def trussness_histogram_ascii(histogram: Dict[int, int],
                              width: int = 50) -> str:
    """Log-scaled ASCII bar chart of a trussness histogram (Figure 3)."""
    import math
    if not histogram:
        return "(empty histogram)"
    max_log = max(math.log10(c + 1) for c in histogram.values())
    lines = []
    for tau in sorted(histogram):
        count = histogram[tau]
        bar = "#" * max(1, int(width * math.log10(count + 1) / max_log))
        lines.append(f"  tau={tau:>3} |{bar} {count}")
    return "\n".join(lines)
