"""Disjoint-set union (union-find) with path halving and union by size.

Used by Kruskal's maximum-spanning-forest construction (TSD-index,
Algorithm 5), GCT-index assembly (Algorithm 8), and component counting
in index queries.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Set, TypeVar

T = TypeVar("T", bound=Hashable)


class DisjointSet(Generic[T]):
    """Union-find over arbitrary hashable items.

    Items are added lazily on first use, or eagerly via the constructor.

    Examples
    --------
    >>> dsu = DisjointSet([1, 2, 3])
    >>> dsu.union(1, 2)
    True
    >>> dsu.connected(1, 2), dsu.connected(1, 3)
    (True, False)
    """

    __slots__ = ("_parent", "_size", "_components")

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: Dict[T, T] = {}
        self._size: Dict[T, int] = {}
        self._components = 0
        for item in items:
            self.add(item)

    def add(self, item: T) -> bool:
        """Register ``item`` as a singleton; ``True`` if it was new."""
        if item in self._parent:
            return False
        self._parent[item] = item
        self._size[item] = 1
        self._components += 1
        return True

    def __contains__(self, item: T) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def num_components(self) -> int:
        """Current number of disjoint components."""
        return self._components

    def find(self, item: T) -> T:
        """The canonical representative of ``item``'s component."""
        parent = self._parent
        if item not in parent:
            self.add(item)
            return item
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:  # path halving
            parent[item], item = root, parent[item]
        return root

    def union(self, a: T, b: T) -> bool:
        """Merge the components of ``a`` and ``b``; ``True`` if they differed."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._components -= 1
        return True

    def connected(self, a: T, b: T) -> bool:
        """Whether ``a`` and ``b`` are currently in the same component."""
        if a not in self._parent or b not in self._parent:
            return False
        return self.find(a) == self.find(b)

    def component_size(self, item: T) -> int:
        """Size of the component containing ``item``."""
        return self._size[self.find(item)]

    def components(self) -> List[Set[T]]:
        """Materialise every component as a set of items."""
        by_root: Dict[T, Set[T]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return list(by_root.values())

    def iter_roots(self) -> Iterator[T]:
        """Iterate one representative per component."""
        for item in self._parent:
            if self.find(item) == item:
                yield item
