"""Shared utilities: union-find, timing."""

from repro.util.dsu import DisjointSet
from repro.util.timing import StopWatch, time_call

__all__ = ["DisjointSet", "StopWatch", "time_call"]
