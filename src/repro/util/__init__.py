"""Shared utilities: union-find, timing, canonical JSON bytes."""

from repro.util.dsu import DisjointSet
from repro.util.jsonio import dumps_payload
from repro.util.timing import StopWatch, time_call

__all__ = ["DisjointSet", "StopWatch", "dumps_payload", "time_call"]
