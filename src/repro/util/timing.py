"""Tiny timing utilities for the experiment harness.

The paper's tables report wall-clock phase timings (index construction,
ego extraction, decomposition, query).  :class:`StopWatch` accumulates
named phase durations with :func:`time.perf_counter`; it is deliberately
free of globals so concurrent builds don't interfere.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class StopWatch:
    """Accumulate named wall-clock phases.

    Examples
    --------
    >>> watch = StopWatch()
    >>> with watch.phase("work"):
    ...     _ = sum(range(10))
    >>> watch.seconds("work") >= 0.0
    True
    """

    __slots__ = ("_totals",)

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager adding the enclosed duration to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Manually add ``seconds`` to phase ``name``."""
        self._totals[name] = self._totals.get(name, 0.0) + seconds

    def seconds(self, name: str) -> float:
        """Total seconds recorded for ``name`` (0.0 if never entered)."""
        return self._totals.get(name, 0.0)

    def totals(self) -> Dict[str, float]:
        """Snapshot of all phase totals."""
        return dict(self._totals)

    @property
    def total(self) -> float:
        """Sum over all phases."""
        return sum(self._totals.values())


def time_call(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)``; return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
