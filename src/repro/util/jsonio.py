"""The one definition of this repo's JSON byte format for artifacts.

Index payloads (TSD, GCT, hybrid) and the store manifest are
byte-compared across builds — the parallel build pipeline asserts
byte-identical output and ``graph_fingerprint`` hashes serialized
bytes.  That only holds if every writer serializes the same way, so
they all route through :func:`dumps_payload` instead of calling
``json.dumps`` with ad-hoc options.

Key order is **insertion order, never ``sort_keys``**: payload dicts
are constructed deterministically (``to_payload`` builds each dict in
a fixed literal order), and sorting here would silently re-encode
every existing on-disk artifact.  If the byte format ever changes,
it changes in this module, with a store schema bump.

Examples
--------
>>> dumps_payload({"b": 1, "a": [1, 2]})
'{"b": 1, "a": [1, 2]}'
>>> print(dumps_payload({"k": 1}, indent=2))
{
  "k": 1
}
"""

from __future__ import annotations

import json
from typing import Optional


def dumps_payload(payload: object, indent: Optional[int] = None) -> str:
    """Serialize an artifact payload in the repo's canonical byte form.

    ``indent=None`` (the default) is the compact form index ``save()``
    writes; the store manifest passes ``indent=2`` for a diffable
    file.  Both keep insertion key order — see the module docstring.
    """
    return json.dumps(payload, indent=indent, sort_keys=False)
