"""Paged binary artifact storage: format, writer, mmap reader, codecs.

The subsystem behind the :class:`~repro.service.store.IndexStore`'s
``codec="bin"`` mode — see :mod:`repro.storage.format` for the on-disk
layout and the README's "On-disk format" section for the operator view.
"""

from repro.storage.format import (
    FORMAT_VERSION,
    HEADER_SIZE,
    KIND_GCT,
    KIND_TSD,
    Header,
)
from repro.storage.writer import (
    compact_artifact,
    encode_artifact,
    write_artifact,
    write_delta,
)
from repro.storage.reader import ArtifactReader, read_payload
from repro.storage.lazy import (
    LazyForestMap,
    LazySupernodeMap,
    LazySuperedgeMap,
    open_gct_artifact,
    open_tsd_artifact,
)
from repro.storage.codec import (
    BINARY_NAMES,
    codec_for_artifact,
    codec_names,
    get_codec,
)

__all__ = [
    "FORMAT_VERSION",
    "HEADER_SIZE",
    "KIND_GCT",
    "KIND_TSD",
    "Header",
    "ArtifactReader",
    "read_payload",
    "encode_artifact",
    "write_artifact",
    "write_delta",
    "compact_artifact",
    "LazyForestMap",
    "LazySupernodeMap",
    "LazySuperedgeMap",
    "open_tsd_artifact",
    "open_gct_artifact",
    "BINARY_NAMES",
    "codec_names",
    "codec_for_artifact",
    "get_codec",
]
