"""Serialising index payloads into the paged binary format.

The writer consumes the exact dicts ``TSDIndex.to_payload()`` /
``GCTIndex.to_payload()`` already produce — positions, stored edge
order, canonical member order — so a binary artifact is a deterministic
function of the payload: two byte-identical payloads encode to two
byte-identical files, preserving the build-equivalence guarantees the
JSON path has.

Three entry points:

* :func:`write_artifact` — full encode, durable via tmp +
  :func:`os.replace`.
* :func:`write_delta` — copy-on-write re-version: copy the base
  artifact's bytes, append replacement records for the changed vertices
  to the heap, patch their offset-dictionary entries, and account the
  superseded bytes in ``dead_bytes``.  Falls back (returns ``False``)
  whenever the base is unusable or the vertex set changed — the caller
  then does a full :func:`write_artifact`.
* :func:`compact_artifact` — rewrite the heap dropping dead bytes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import ArtifactFormatError
from repro.storage.format import (
    DICT_ENTRY_SIZE,
    HEADER_SIZE,
    KIND_GCT,
    KIND_TSD,
    Header,
    encode_gct_block,
    encode_tsd_block,
    pack_dict_entry,
    unpack_dict_entry,
)
from repro.util.jsonio import dumps_payload

_PAYLOAD_KINDS = {"repro-tsd-index": KIND_TSD, "repro-gct-index": KIND_GCT}


def payload_kind(payload: Dict, source: str = "<payload>") -> int:
    """The artifact kind of an index payload (validates format tag)."""
    kind = _PAYLOAD_KINDS.get(payload.get("format"))
    if kind is None:
        raise ArtifactFormatError(
            source, f"not an index payload (format "
            f"{payload.get('format')!r})")
    if payload.get("version") != 1:
        raise ArtifactFormatError(
            source, f"unsupported payload version "
            f"{payload.get('version')!r}")
    return kind


def _fingerprint_bytes(fingerprint: Optional[str]) -> bytes:
    """Hex graph fingerprint → 32 raw header bytes (zeros when absent)."""
    if not fingerprint:
        return b"\0" * 32
    raw = bytes.fromhex(fingerprint)
    if len(raw) != 32:
        raise ArtifactFormatError(
            "<fingerprint>", f"expected a SHA-256 hex digest, got "
            f"{fingerprint!r}")
    return raw


def _labels_blob(payload: Dict) -> bytes:
    return dumps_payload(payload["vertices"]).encode("utf-8")


def _profile_blob(payload: Dict) -> bytes:
    profile = payload.get("build_profile")
    if profile is None:
        return b""
    return dumps_payload(profile).encode("utf-8")


def _block_at(payload: Dict, kind: int,
              pos: int) -> Tuple[Optional[bytes], int]:
    """``(block bytes or None, max weight within)`` for one position."""
    key = str(pos)
    if kind == KIND_TSD:
        edges = payload["forests"].get(key)
        if edges is None:
            return None, 0
        max_w = max((edge[2] for edge in edges), default=0)
        return encode_tsd_block(edges), max_w
    nodes = payload["supernodes"].get(key)
    edges = payload["superedges"].get(key)
    if nodes is None and edges is None:
        return None, 0
    nodes = nodes or []
    edges = edges or []
    max_w = max((tau for tau, _ in nodes), default=0)
    max_w = max(max_w, max((edge[2] for edge in edges), default=0))
    return encode_gct_block(nodes, edges), max_w


def encode_artifact(payload: Dict,
                    fingerprint: Optional[str] = None) -> bytes:
    """Encode one index payload as a complete binary artifact."""
    kind = payload_kind(payload)
    labels = _labels_blob(payload)
    profile = _profile_blob(payload)
    num_vertices = len(payload["vertices"])

    labels_off = HEADER_SIZE
    profile_off = labels_off + len(labels)
    dict_off = profile_off + len(profile)
    heap_off = dict_off + num_vertices * DICT_ENTRY_SIZE

    entries = []
    heap = bytearray()
    max_weight = 0
    for pos in range(num_vertices):
        block, block_max = _block_at(payload, kind, pos)
        if block is None:
            entries.append(pack_dict_entry(0, 0))
            continue
        entries.append(pack_dict_entry(heap_off + len(heap), len(block)))
        heap += block
        if block_max > max_weight:
            max_weight = block_max

    body = labels + profile + b"".join(entries) + bytes(heap)
    header = Header(
        kind=kind,
        fingerprint=_fingerprint_bytes(fingerprint),
        checksum=hashlib.sha256(body).digest(),
        num_vertices=num_vertices,
        max_weight=max_weight,
        labels_off=labels_off, labels_len=len(labels),
        profile_off=profile_off, profile_len=len(profile),
        dict_off=dict_off, heap_off=heap_off,
        file_len=HEADER_SIZE + len(body),
        dead_bytes=0,
    )
    return header.pack() + body


def _write_bytes_atomic(path: Path, data: bytes) -> None:
    """Durable write: tmp sibling + :func:`os.replace`, same as the
    store's JSON artifacts — a crash mid-write never tears a file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def write_artifact(path, payload: Dict,
                   fingerprint: Optional[str] = None) -> None:
    """Full binary encode of ``payload`` to ``path`` (atomic)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _write_bytes_atomic(path, encode_artifact(payload,
                                              fingerprint=fingerprint))


def write_delta(base_path, path, payload: Dict,
                changed: Iterable[object],
                fingerprint: Optional[str] = None) -> bool:
    """Copy-on-write re-version of ``base_path`` into ``path``.

    ``changed`` names the vertex labels whose records may differ from
    the base artifact (the update batch's affected set); every other
    record is carried over byte-for-byte.  Replacement blocks are
    *appended* to the heap and the superseded offsets rewritten in the
    dictionary — no unchanged record is re-encoded.  Returns ``False``
    without writing when a delta does not apply (missing/foreign base,
    changed vertex set or build profile, kind mismatch); the caller
    falls back to :func:`write_artifact`.
    """
    base_path = Path(base_path)
    try:
        base = base_path.read_bytes()
    except OSError:
        return False
    try:
        header = Header.unpack(base, source=str(base_path))
    except ArtifactFormatError:
        return False
    if header.file_len != len(base):
        return False  # torn or trailing-garbage base: rewrite fully
    kind = payload_kind(payload)
    if kind != header.kind:
        return False
    labels = _labels_blob(payload)
    if labels != base[header.labels_off:
                      header.labels_off + header.labels_len]:
        return False  # vertex set changed: every position shifted
    profile = _profile_blob(payload)
    if profile and profile != base[header.profile_off:
                                   header.profile_off
                                   + header.profile_len]:
        # A *different* profile cannot be patched in place (the region
        # tiling is fixed); a payload with *no* profile keeps the
        # base's — the delta inherits the original build's provenance.
        return False

    position = {v: i for i, v in enumerate(payload["vertices"])}
    changed_positions = sorted({position[v] for v in changed
                                if v in position})

    out = bytearray(base[:header.file_len])
    appended = bytearray()
    dead = header.dead_bytes
    max_weight = header.max_weight
    heap_end = header.file_len
    for pos in changed_positions:
        entry_off = header.dict_off + pos * DICT_ENTRY_SIZE
        old_off, old_len = unpack_dict_entry(base, entry_off)
        block, block_max = _block_at(payload, kind, pos)
        if block is None:
            if old_len == 0:
                continue
            dead += old_len
            out[entry_off:entry_off + DICT_ENTRY_SIZE] = \
                pack_dict_entry(0, 0)
            continue
        if old_len == len(block) \
                and base[old_off:old_off + old_len] == block:
            continue  # the "affected" record did not actually change
        dead += old_len
        out[entry_off:entry_off + DICT_ENTRY_SIZE] = pack_dict_entry(
            heap_end + len(appended), len(block))
        appended += block
        if block_max > max_weight:
            # max_weight is an upper bound: a superseded maximum is not
            # rescanned for, only growth is tracked (see reader note).
            max_weight = block_max

    out += appended
    new_header = Header(
        kind=kind,
        fingerprint=_fingerprint_bytes(fingerprint),
        checksum=b"\0" * 32,
        num_vertices=header.num_vertices,
        max_weight=max_weight,
        labels_off=header.labels_off, labels_len=header.labels_len,
        profile_off=header.profile_off, profile_len=header.profile_len,
        dict_off=header.dict_off, heap_off=header.heap_off,
        file_len=len(out), dead_bytes=dead,
    )
    checksum = hashlib.sha256(bytes(out[HEADER_SIZE:])).digest()
    new_header = dataclasses.replace(new_header, checksum=checksum)
    out[:HEADER_SIZE] = new_header.pack()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _write_bytes_atomic(path, bytes(out))
    return True


def compact_artifact(path) -> int:
    """Rewrite one artifact's heap without its dead bytes.

    Live records are laid out contiguously in position order and every
    dictionary entry rewritten; returns the number of bytes reclaimed
    (0 when the artifact had no dead bytes).
    """
    path = Path(path)
    data = path.read_bytes()
    header = Header.unpack(data, source=str(path))
    if header.dead_bytes == 0:
        return 0
    entries = []
    heap = bytearray()
    for pos in range(header.num_vertices):
        old_off, old_len = unpack_dict_entry(
            data, header.dict_off + pos * DICT_ENTRY_SIZE)
        if old_len == 0:
            entries.append(pack_dict_entry(0, 0))
            continue
        entries.append(pack_dict_entry(header.heap_off + len(heap),
                                       old_len))
        heap += data[old_off:old_off + old_len]
    body = (data[header.labels_off:header.dict_off]
            + b"".join(entries) + bytes(heap))
    new_header = Header(
        kind=header.kind,
        fingerprint=header.fingerprint,
        checksum=hashlib.sha256(body).digest(),
        num_vertices=header.num_vertices,
        max_weight=header.max_weight,
        labels_off=header.labels_off, labels_len=header.labels_len,
        profile_off=header.profile_off, profile_len=header.profile_len,
        dict_off=header.dict_off, heap_off=header.heap_off,
        file_len=HEADER_SIZE + len(body), dead_bytes=0,
    )
    _write_bytes_atomic(path, new_header.pack() + body)
    return header.file_len - new_header.file_len


def profile_payload_from_blob(blob: bytes,
                              source: str = "<buffer>") -> Optional[Dict]:
    """Decode a profile region back into its payload dict (or ``None``)."""
    if not blob:
        return None
    try:
        return json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ArtifactFormatError(
            source, f"corrupt build-profile blob ({exc})") from exc
