"""Artifact codecs: how the :class:`IndexStore` writes and reads bytes.

The store used to hard-code ``<name>.json`` + ``json.loads``; codecs
make the byte format pluggable per artifact while the manifest, the
versioning, and the durability idiom (tmp + :func:`os.replace`) stay
exactly as they were.  Two codecs exist:

* ``json`` — the original whole-payload JSON files.  Every artifact
  kind supports it; it stays the default for backwards compatibility
  (an existing store keeps working byte-for-byte).
* ``bin``  — the paged binary format of :mod:`repro.storage.format`,
  for ``tsd`` and ``gct`` artifacts only (``hybrid`` and ``scores``
  payloads are small, graph-attached dicts with no per-vertex record
  structure to page).  Reads open lazily through the mmap reader.

The manifest records the codec *per artifact* (a ``codecs`` sub-dict in
each version record, omitted for pure-JSON versions), so one store can
hold mixed-codec lineages and ``repro convert-index`` can migrate in
either direction in place.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional

from repro.errors import StoreError
from repro.storage.lazy import open_gct_artifact, open_tsd_artifact
from repro.storage.reader import read_payload
from repro.storage.writer import write_artifact, write_delta
from repro.util.jsonio import dumps_payload

#: Artifact names the binary codec can encode.
BINARY_NAMES = ("tsd", "gct")


class JsonCodec:
    """Whole-payload JSON files — the store's original format."""

    name = "json"
    extension = "json"

    def write(self, path: Path, payload: Dict,
              fingerprint: Optional[str] = None) -> None:
        """Atomic JSON write (tmp + :func:`os.replace`)."""
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(dumps_payload(payload), encoding="utf-8")
        os.replace(tmp, path)

    def write_incremental(self, base_path: Path, path: Path,
                          payload: Dict, changed,
                          fingerprint: Optional[str] = None) -> bool:
        """JSON has no record structure to patch — always full write."""
        return False

    def load_payload(self, path: Path) -> Dict:
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise StoreError(f"{path}: unreadable artifact ({exc})") from exc

    def open_index(self, name: str, path: Path):
        """JSON materialises through ``from_payload`` — no lazy path."""
        return None


class BinaryCodec:
    """The paged binary format (``tsd``/``gct`` artifacts only)."""

    name = "bin"
    extension = "bin"

    def write(self, path: Path, payload: Dict,
              fingerprint: Optional[str] = None) -> None:
        write_artifact(path, payload, fingerprint=fingerprint)

    def write_incremental(self, base_path: Path, path: Path,
                          payload: Dict, changed,
                          fingerprint: Optional[str] = None) -> bool:
        """Delta re-version: append changed records, patch offsets."""
        return write_delta(base_path, path, payload, changed,
                           fingerprint=fingerprint)

    def load_payload(self, path: Path) -> Dict:
        return read_payload(path)

    def open_index(self, name: str, path: Path):
        """An mmap-backed lazy index (the warm-start fast path)."""
        if name == "tsd":
            return open_tsd_artifact(path)
        if name == "gct":
            return open_gct_artifact(path)
        return None


_CODECS = {codec.name: codec for codec in (JsonCodec(), BinaryCodec())}


def codec_names() -> tuple:
    """Registered codec names (CLI ``choices=``)."""
    return tuple(sorted(_CODECS))


def get_codec(name: str):
    """The codec registered under ``name``; typed error on unknown."""
    codec = _CODECS.get(name)
    if codec is None:
        raise StoreError(
            f"unknown artifact codec {name!r} (have: "
            f"{', '.join(codec_names())})")
    return codec


def codec_for_artifact(artifact_name: str, store_codec: str) -> str:
    """The effective codec for one artifact under a store-level choice.

    The binary codec applies only to the per-vertex-record artifacts;
    everything else stays JSON whatever the store was opened with.
    """
    if store_codec == "bin" and artifact_name in BINARY_NAMES:
        return "bin"
    return "json"
