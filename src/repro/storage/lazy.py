"""Lazy forest providers: mmap artifacts behind the index Mapping APIs.

:class:`~repro.core.tsd.TSDIndex` and :class:`~repro.core.gct.GCTIndex`
normally own plain dicts (vertex → forest / supernodes / superedges).
The classes here are drop-in :class:`~collections.abc.Mapping`
replacements backed by an :class:`~repro.storage.reader.ArtifactReader`
— a lookup decodes exactly one record, an iteration walks the offset
dictionary, and nothing is materialised up front.  The index classes
duck-type the extra accessors (``weights`` / ``max_weight`` /
``tau_sorted`` / ``weight_sorted``) to skip their eager precomputation;
``core`` never imports ``storage``, so the dependency points one way.

The canonical ranking contract holds bit-for-bit over these maps: the
decoded records are exactly the ``to_payload()`` data the artifact was
written from, in the same stored order — the cross-method and
property-random suites assert it end to end.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Iterator, List, Optional, Tuple

from repro.core.gct import GCTIndex, Supernode, Superedge
from repro.core.tsd import BuildProfile, ForestEdge, TSDIndex
from repro.errors import ArtifactFormatError
from repro.storage.format import KIND_GCT, KIND_TSD, KIND_NAMES
from repro.storage.reader import DEFAULT_CACHE_RECORDS, ArtifactReader


class _LazyRecordMap(Mapping):
    """Shared plumbing: labels ↔ positions over one reader."""

    def __init__(self, reader: ArtifactReader) -> None:
        self._reader = reader
        self._labels = reader.labels()
        self._position = {v: i for i, v in enumerate(self._labels)}
        self._len: Optional[int] = None

    @property
    def reader(self) -> ArtifactReader:
        return self._reader

    def _pos(self, v) -> int:
        pos = self._position.get(v)
        if pos is None or not self._reader.has(pos):
            raise KeyError(v)
        return pos

    def __contains__(self, v) -> bool:
        pos = self._position.get(v)
        return pos is not None and self._reader.has(pos)

    def __iter__(self) -> Iterator:
        reader = self._reader
        return (v for i, v in enumerate(self._labels) if reader.has(i))

    def __len__(self) -> int:
        if self._len is None:
            reader = self._reader
            self._len = sum(1 for i in range(len(self._labels))
                            if reader.has(i))
        return self._len


class LazyForestMap(_LazyRecordMap):
    """``vertex → forest edge list``, decoded per record on demand."""

    def __init__(self, reader: ArtifactReader) -> None:
        if reader.kind != KIND_TSD:
            raise ArtifactFormatError(
                str(reader.path), f"expected a tsd artifact, found "
                f"{KIND_NAMES[reader.kind]}")
        super().__init__(reader)

    def __getitem__(self, v) -> List[ForestEdge]:
        return self._reader.forest(self._pos(v))

    def weights(self, v) -> List[int]:
        """One forest's weight column (descending) — the bound-pass
        fast path, no label decoding."""
        return self._reader.weights(self._pos(v))

    @property
    def max_weight(self) -> int:
        """Header upper bound over all forest weights (O(1))."""
        return self._reader.max_weight


class LazySupernodeMap(_LazyRecordMap):
    """``vertex → supernode list`` over a GCT artifact."""

    def __init__(self, reader: ArtifactReader) -> None:
        if reader.kind != KIND_GCT:
            raise ArtifactFormatError(
                str(reader.path), f"expected a gct artifact, found "
                f"{KIND_NAMES[reader.kind]}")
        super().__init__(reader)

    def __getitem__(self, v) -> List[Supernode]:
        return self._reader.supernodes(self._pos(v))

    def tau_sorted(self, v) -> List[int]:
        """Descending supernode taus — Lemma-3 prefix decode."""
        return self._reader.summary(self._pos(v))[0]


class LazySuperedgeMap(_LazyRecordMap):
    """``vertex → superedge list`` over the same GCT artifact."""

    def __getitem__(self, v) -> List[Superedge]:
        return self._reader.superedges(self._pos(v))

    def weight_sorted(self, v) -> List[int]:
        """Descending superedge weights — Lemma-3 prefix decode."""
        return self._reader.summary(self._pos(v))[1]


def open_tsd_artifact(path,
                      cache_records: int = DEFAULT_CACHE_RECORDS
                      ) -> TSDIndex:
    """Open a binary TSD artifact as a lazily-loading :class:`TSDIndex`.

    O(labels) work up front (the vertex list and position map); every
    forest decodes on first touch.  The returned index answers every
    query bit-for-bit like ``TSDIndex.from_payload`` over the same
    data — it *is* the same data, addressed through the mmap.
    """
    reader = ArtifactReader(path, cache_records=cache_records)
    forests = LazyForestMap(reader)
    profile = BuildProfile.from_payload(reader.build_profile_payload())
    return TSDIndex(forests, reader.labels(), profile)


def open_gct_artifact(path,
                      cache_records: int = DEFAULT_CACHE_RECORDS
                      ) -> GCTIndex:
    """Open a binary GCT artifact as a lazily-loading :class:`GCTIndex`."""
    reader = ArtifactReader(path, cache_records=cache_records)
    supernodes = LazySupernodeMap(reader)
    superedges = LazySuperedgeMap(reader)
    profile = BuildProfile.from_payload(reader.build_profile_payload())
    return GCTIndex(supernodes, superedges, reader.labels(), profile)
