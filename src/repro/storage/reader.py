""":class:`ArtifactReader`: mmap-backed, lazily decoding artifact access.

Opening a reader maps the file read-only and validates only the header
and region bounds — O(1) work however large the artifact is.  Record
blocks are decoded on first touch through the offset dictionary and
kept in a bounded LRU of decoded values, so a query workload pays
decoding cost proportional to the vertices it *touches*, and a process
can keep many more artifacts open than would fit decoded in RAM (the
OS page cache, not the Python heap, holds the cold bytes).

Thread safety: the decoded-value LRU and the memoised label list are
the only mutable state; every mutation happens under ``self._lock``
(an :class:`threading.RLock`), which is registered in the RL002
guarded-state table — ``make lint`` enforces the discipline.  Decoding
itself runs outside the lock: a cache miss may decode the same block
twice concurrently, but the results are identical and the last insert
wins, so readers never serialise behind a decode.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ArtifactFormatError
from repro.storage.format import (
    DICT_ENTRY_SIZE,
    HEADER_SIZE,
    KIND_GCT,
    KIND_NAMES,
    KIND_TSD,
    Header,
    decode_gct_block,
    decode_gct_summary,
    decode_tsd_block,
    decode_tsd_weights,
    unpack_dict_entry,
)
from repro.storage.writer import profile_payload_from_blob

#: Default LRU capacity, in decoded records (not bytes): generous for
#: query working sets, small next to whole-index materialisation.
DEFAULT_CACHE_RECORDS = 1024


class ArtifactReader:
    """Read-only, lazily decoding view of one binary index artifact.

    Parameters
    ----------
    path:
        The ``.bin`` artifact file.
    cache_records:
        LRU capacity in decoded records; least-recently-used decoded
        values are evicted first (the mmap bytes stay available, so an
        evicted record is merely re-decoded on its next touch).
    """

    def __init__(self, path, cache_records: int = DEFAULT_CACHE_RECORDS):
        self._path = Path(path)
        self._source = str(self._path)
        self._file = open(self._path, "rb")
        try:
            size = self._path.stat().st_size
            if size < HEADER_SIZE:
                raise ArtifactFormatError(
                    self._source,
                    f"truncated file: {size} bytes, need at least "
                    f"{HEADER_SIZE}")
            self._mmap = mmap.mmap(self._file.fileno(), 0,
                                   access=mmap.ACCESS_READ)
        except BaseException:
            self._file.close()
            raise
        try:
            self.header = Header.unpack(self._mmap, source=self._source)
            if self.header.file_len != size:
                raise ArtifactFormatError(
                    self._source,
                    f"file is {size} bytes but the header records "
                    f"{self.header.file_len} — truncated or overwritten")
        except BaseException:
            self._mmap.close()
            self._file.close()
            raise
        self._cache_records = max(1, int(cache_records))
        self._lock = threading.RLock()
        self._cache: "OrderedDict[Tuple[str, int], object]" = OrderedDict()
        self._labels: Optional[List[object]] = None

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def kind(self) -> int:
        """:data:`~repro.storage.format.KIND_TSD` or ``KIND_GCT``."""
        return self.header.kind

    @property
    def kind_name(self) -> str:
        return KIND_NAMES[self.header.kind]

    @property
    def num_vertices(self) -> int:
        return self.header.num_vertices

    @property
    def max_weight(self) -> int:
        """Upper bound on every stored weight/trussness (delta writes
        only grow it; see :func:`repro.storage.writer.write_delta`)."""
        return self.header.max_weight

    @property
    def fingerprint(self) -> Optional[str]:
        """Hex graph fingerprint, or ``None`` when written as unknown."""
        raw = self.header.fingerprint
        return raw.hex() if raw.strip(b"\0") else None

    # ------------------------------------------------------------------
    # LRU plumbing
    # ------------------------------------------------------------------
    def _cached(self, key: Tuple[str, int], produce):
        with self._lock:
            hit = self._cache.get(key)
            if hit is not None:
                self._cache.move_to_end(key)
                return hit
        value = produce()  # decode outside the lock (see module doc)
        with self._lock:
            self._cache[key] = value
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_records:
                self._cache.popitem(last=False)
        return value

    def cache_len(self) -> int:
        """Decoded records currently resident (tests/inspection)."""
        with self._lock:
            return len(self._cache)

    # ------------------------------------------------------------------
    # Regions
    # ------------------------------------------------------------------
    def labels(self) -> List[object]:
        """The vertex list, insertion-ordered, JSON list labels as
        tuples (same normalisation as ``from_payload``)."""
        with self._lock:
            if self._labels is not None:
                return self._labels
        header = self.header
        blob = self._mmap[header.labels_off:
                          header.labels_off + header.labels_len]
        try:
            raw = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ArtifactFormatError(
                self._source, f"corrupt labels blob ({exc})") from exc
        labels = [tuple(v) if isinstance(v, list) else v for v in raw]
        if len(labels) != header.num_vertices:
            raise ArtifactFormatError(
                self._source,
                f"labels blob holds {len(labels)} vertices, header "
                f"says {header.num_vertices}")
        with self._lock:
            self._labels = labels
        return labels

    def build_profile_payload(self) -> Optional[Dict]:
        header = self.header
        blob = self._mmap[header.profile_off:
                          header.profile_off + header.profile_len]
        return profile_payload_from_blob(blob, source=self._source)

    def _entry(self, pos: int) -> Tuple[int, int]:
        header = self.header
        if not 0 <= pos < header.num_vertices:
            raise ArtifactFormatError(
                self._source, f"record position {pos} out of range "
                f"[0, {header.num_vertices})")
        off, length = unpack_dict_entry(
            self._mmap, header.dict_off + pos * DICT_ENTRY_SIZE)
        if length and not (header.heap_off <= off
                           and off + length <= header.file_len):
            raise ArtifactFormatError(
                self._source, f"record {pos} points outside the heap "
                f"(offset {off}, length {length})")
        return off, length

    def has(self, pos: int) -> bool:
        """Whether position ``pos`` has a stored record."""
        return self._entry(pos)[1] > 0

    def _require(self, pos: int, want_kind: int) -> Tuple[int, int]:
        if self.header.kind != want_kind:
            raise ArtifactFormatError(
                self._source,
                f"this is a {self.kind_name} artifact, not "
                f"{KIND_NAMES[want_kind]}")
        off, length = self._entry(pos)
        if length == 0:
            raise ArtifactFormatError(
                self._source, f"position {pos} has no stored record")
        return off, length

    # ------------------------------------------------------------------
    # TSD records
    # ------------------------------------------------------------------
    def forest(self, pos: int) -> List[Tuple[object, object, int]]:
        """Decoded forest of one vertex: ``(u, w, weight)`` with labels
        applied, in stored (weight-descending) order."""
        def produce():
            off, length = self._require(pos, KIND_TSD)
            labels = self.labels()
            edges = decode_tsd_block(self._mmap, off, length, self._source)
            try:
                return [(labels[u], labels[w], weight)
                        for u, w, weight in edges]
            except IndexError:
                raise ArtifactFormatError(
                    self._source, f"record {pos} references a vertex "
                    "position outside the labels list") from None
        return self._cached(("forest", pos), produce)

    def weights(self, pos: int) -> List[int]:
        """One forest's weight column (descending), no label decode."""
        with self._lock:
            hit = self._cache.get(("forest", pos))
        if hit is not None:
            return [weight for _, _, weight in hit]

        def produce():
            off, length = self._require(pos, KIND_TSD)
            return decode_tsd_weights(self._mmap, off, length,
                                      self._source)
        return self._cached(("weights", pos), produce)

    # ------------------------------------------------------------------
    # GCT records
    # ------------------------------------------------------------------
    def _gct_record(self, pos: int):
        def produce():
            off, length = self._require(pos, KIND_GCT)
            labels = self.labels()
            nodes, edges = decode_gct_block(self._mmap, off, length,
                                            self._source)
            try:
                decoded_nodes = [
                    (tau, tuple(labels[m] for m in members))
                    for tau, members in nodes]
            except IndexError:
                raise ArtifactFormatError(
                    self._source, f"record {pos} references a member "
                    "position outside the labels list") from None
            return decoded_nodes, [tuple(edge) for edge in edges]
        return self._cached(("gct", pos), produce)

    def supernodes(self, pos: int) -> List[Tuple[int, Tuple[object, ...]]]:
        """One vertex's supernodes as ``(tau, members)`` pairs."""
        return self._gct_record(pos)[0]

    def superedges(self, pos: int) -> List[Tuple[int, int, int]]:
        """One vertex's superedges as ``(i, j, weight)`` triples."""
        return self._gct_record(pos)[1]

    def summary(self, pos: int) -> Tuple[List[int], List[int]]:
        """``(taus desc, superedge weights desc)`` — the Lemma-3 fast
        path, decoded from the record prefix (members untouched)."""
        def produce():
            off, length = self._require(pos, KIND_GCT)
            return decode_gct_summary(self._mmap, off, length,
                                      self._source)
        return self._cached(("summary", pos), produce)

    # ------------------------------------------------------------------
    # Integrity and inspection
    # ------------------------------------------------------------------
    def verify_checksum(self) -> None:
        """SHA-256 the mapped body and compare with the header.

        Raises :class:`~repro.errors.ArtifactFormatError` on mismatch.
        Deliberately *not* run on open — it reads the whole file, which
        is exactly what lazy page-in avoids; call it from integrity
        tooling (``repro store-inspect --verify``) instead.
        """
        digest = hashlib.sha256(
            self._mmap[HEADER_SIZE:self.header.file_len]).digest()
        if digest != self.header.checksum:
            raise ArtifactFormatError(
                self._source, "payload checksum mismatch: the artifact "
                "body was corrupted after it was written")

    def stats(self) -> Dict[str, object]:
        """Header and offset-dictionary statistics (``store-inspect``)."""
        header = self.header
        lengths = []
        present = 0
        for pos in range(header.num_vertices):
            _, length = unpack_dict_entry(
                self._mmap, header.dict_off + pos * DICT_ENTRY_SIZE)
            if length:
                present += 1
                lengths.append(length)
        heap_bytes = header.file_len - header.heap_off
        return {
            "kind": self.kind_name,
            "format_version": 1,
            "fingerprint": self.fingerprint,
            "num_vertices": header.num_vertices,
            "records_present": present,
            "max_weight": header.max_weight,
            "labels_bytes": header.labels_len,
            "profile_bytes": header.profile_len,
            "dict_bytes": header.num_vertices * DICT_ENTRY_SIZE,
            "heap_bytes": heap_bytes,
            "dead_bytes": header.dead_bytes,
            "file_bytes": header.file_len,
            "record_bytes_min": min(lengths) if lengths else 0,
            "record_bytes_max": max(lengths) if lengths else 0,
            "record_bytes_mean": (sum(lengths) / len(lengths)
                                  if lengths else 0.0),
        }

    def close(self) -> None:
        """Unmap the file.  Reads after close raise ``ValueError``."""
        self._mmap.close()
        self._file.close()

    def __enter__(self) -> "ArtifactReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ArtifactReader({self._source!r}, kind={self.kind_name}, "
                f"vertices={self.num_vertices})")


def read_payload(path) -> Dict:
    """Materialise a binary artifact back into its full payload dict.

    The inverse of :func:`repro.storage.writer.encode_artifact`: the
    returned dict is structurally equal to the ``to_payload()`` dict
    the artifact was written from (JSON-shaped — edges as lists), so
    ``from_payload`` and codec conversion consume it directly.
    """
    with ArtifactReader(path) as reader:
        header = reader.header
        labels_raw = json.loads(
            reader._mmap[header.labels_off:
                         header.labels_off + header.labels_len]
            .decode("utf-8"))
        payload: Dict = {
            "format": ("repro-tsd-index" if header.kind == KIND_TSD
                       else "repro-gct-index"),
            "version": 1,
            "vertices": labels_raw,
        }
        if header.kind == KIND_TSD:
            forests = {}
            for pos in range(header.num_vertices):
                off, length = reader._entry(pos)
                if length == 0:
                    continue
                forests[str(pos)] = decode_tsd_block(
                    reader._mmap, off, length, reader._source)
            payload["forests"] = forests
        else:
            supernodes = {}
            superedges = {}
            for pos in range(header.num_vertices):
                off, length = reader._entry(pos)
                if length == 0:
                    continue
                nodes, edges = decode_gct_block(
                    reader._mmap, off, length, reader._source)
                supernodes[str(pos)] = nodes
                superedges[str(pos)] = edges
            payload["supernodes"] = supernodes
            payload["superedges"] = superedges
        profile = reader.build_profile_payload()
        if profile is not None:
            payload["build_profile"] = profile
        return payload
