"""The paged binary artifact format (``.bin``): layout and codecs.

JSON artifacts force a warm start to deserialise *every* forest of
*every* graph before the first query can run.  This format removes that
cost: per-vertex records are fixed-layout ``struct`` blocks addressed
through a packed offset dictionary, so an ``mmap``-backed reader pages
in only the records a query touches.

File layout (all integers little-endian)::

    +---------------------------+ 0
    | header (156 bytes)        |   magic, version, kind, fingerprint,
    |                           |   checksum, region offsets
    +---------------------------+ labels_off
    | labels blob               |   canonical JSON vertex list (utf-8)
    +---------------------------+ profile_off
    | profile blob              |   build-profile JSON ("" when absent)
    +---------------------------+ dict_off
    | offset dictionary         |   num_vertices x (u64 offset, u64 len)
    +---------------------------+ heap_off
    | record heap               |   per-vertex blocks, position order
    +---------------------------+ file_len

A dictionary entry of ``(0, 0)`` marks an absent record.  Delta writes
append superseded records' replacements to the heap and patch their
dictionary entries in place — ``dead_bytes`` accounts the garbage until
:func:`repro.storage.writer.compact_artifact` rewrites the heap.

Record blocks:

* **TSD** (``kind=1``): ``u32 n`` then ``n`` x ``(u32 u, u32 w,
  u32 weight)`` — the forest edges in stored (weight-descending) order,
  endpoints as positions into the labels list.
* **GCT** (``kind=2``): ``u32 n_nodes, u32 n_edges``, then ``n_nodes``
  taus (``u32``), then ``n_edges`` x ``(u32 i, u32 j, u32 weight)``,
  then per node ``u32 member_count`` + members (positions).  The taus
  and superedge weights — all a Lemma-3 score needs — decode from the
  block *prefix* without touching the member lists.

The header ``checksum`` is SHA-256 over every byte after the header;
readers verify it on demand (:meth:`ArtifactReader.verify_checksum`),
not per page — a per-access hash would defeat lazy page-in.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ArtifactFormatError

MAGIC = b"RBIX"
FORMAT_VERSION = 1

#: Artifact kinds (the ``kind`` header field).
KIND_TSD = 1
KIND_GCT = 2
KIND_NAMES = {KIND_TSD: "tsd", KIND_GCT: "gct"}

_HEADER = struct.Struct(
    "<4s"   # magic
    "H"     # format_version
    "H"     # kind
    "I"     # flags (reserved, 0)
    "32s"   # graph fingerprint (raw SHA-256; zeros when unknown)
    "32s"   # checksum: SHA-256 over bytes [HEADER_SIZE, file_len)
    "Q"     # num_vertices
    "I"     # max_weight (upper bound over stored weights/taus)
    "I"     # reserved pad
    "Q"     # labels_off
    "Q"     # labels_len
    "Q"     # profile_off
    "Q"     # profile_len
    "Q"     # dict_off
    "Q"     # heap_off
    "Q"     # file_len
    "Q"     # dead_bytes (superseded heap bytes awaiting compaction)
)
HEADER_SIZE = _HEADER.size

_DICT_ENTRY = struct.Struct("<QQ")
DICT_ENTRY_SIZE = _DICT_ENTRY.size

_U32 = struct.Struct("<I")
_U32_PAIR = struct.Struct("<II")


@dataclass(frozen=True)
class Header:
    """Decoded header of one binary artifact."""

    kind: int
    fingerprint: bytes  # 32 raw bytes (zeros when unknown)
    checksum: bytes     # 32 raw bytes
    num_vertices: int
    max_weight: int
    labels_off: int
    labels_len: int
    profile_off: int
    profile_len: int
    dict_off: int
    heap_off: int
    file_len: int
    dead_bytes: int

    def pack(self) -> bytes:
        return _HEADER.pack(
            MAGIC, FORMAT_VERSION, self.kind, 0,
            self.fingerprint, self.checksum,
            self.num_vertices, self.max_weight, 0,
            self.labels_off, self.labels_len,
            self.profile_off, self.profile_len,
            self.dict_off, self.heap_off,
            self.file_len, self.dead_bytes)

    @classmethod
    def unpack(cls, buf, source: str = "<buffer>") -> "Header":
        """Decode and *validate* a header.  Raises
        :class:`~repro.errors.ArtifactFormatError` on anything that is
        not a well-formed version-1 artifact header."""
        if len(buf) < HEADER_SIZE:
            raise ArtifactFormatError(
                source, f"truncated header: {len(buf)} bytes, "
                f"need {HEADER_SIZE}")
        (magic, version, kind, _flags, fingerprint, checksum,
         num_vertices, max_weight, _pad,
         labels_off, labels_len, profile_off, profile_len,
         dict_off, heap_off, file_len, dead_bytes
         ) = _HEADER.unpack_from(buf, 0)
        if magic != MAGIC:
            raise ArtifactFormatError(
                source, f"not a binary index artifact (magic {magic!r})")
        if version != FORMAT_VERSION:
            raise ArtifactFormatError(
                source, f"unsupported format version {version} "
                f"(this build reads version {FORMAT_VERSION})")
        if kind not in KIND_NAMES:
            raise ArtifactFormatError(source, f"unknown artifact kind {kind}")
        header = cls(kind=kind, fingerprint=fingerprint, checksum=checksum,
                     num_vertices=num_vertices, max_weight=max_weight,
                     labels_off=labels_off, labels_len=labels_len,
                     profile_off=profile_off, profile_len=profile_len,
                     dict_off=dict_off, heap_off=heap_off,
                     file_len=file_len, dead_bytes=dead_bytes)
        header.validate_regions(source)
        return header

    def validate_regions(self, source: str) -> None:
        """Region offsets must tile ``[HEADER_SIZE, file_len)`` in order."""
        expected_dict = self.profile_off + self.profile_len
        ok = (self.labels_off == HEADER_SIZE
              and self.profile_off == self.labels_off + self.labels_len
              and self.dict_off == expected_dict
              and self.heap_off == self.dict_off
              + self.num_vertices * DICT_ENTRY_SIZE
              and self.heap_off <= self.file_len)
        if not ok:
            raise ArtifactFormatError(
                source, "corrupt header: region offsets are inconsistent")


def pack_dict_entry(offset: int, length: int) -> bytes:
    return _DICT_ENTRY.pack(offset, length)


def unpack_dict_entry(buf, entry_offset: int) -> Tuple[int, int]:
    return _DICT_ENTRY.unpack_from(buf, entry_offset)


# ----------------------------------------------------------------------
# TSD record blocks
# ----------------------------------------------------------------------
def encode_tsd_block(edges: Sequence[Sequence[int]]) -> bytes:
    """``[[u, w, weight], ...]`` (positions, stored order) → block bytes."""
    n = len(edges)
    flat: List[int] = []
    for edge in edges:
        flat.extend(edge)
    return struct.pack(f"<{1 + 3 * n}I", n, *flat)


def decode_tsd_block(buf, offset: int, length: int,
                     source: str = "<buffer>") -> List[List[int]]:
    """Inverse of :func:`encode_tsd_block` (exact-length check)."""
    if length < _U32.size:
        raise ArtifactFormatError(source, "truncated TSD record header")
    (n,) = _U32.unpack_from(buf, offset)
    if length != _U32.size * (1 + 3 * n):
        raise ArtifactFormatError(
            source, f"TSD record length {length} does not match "
            f"{n} edges")
    flat = struct.unpack_from(f"<{3 * n}I", buf, offset + _U32.size)
    return [[flat[i], flat[i + 1], flat[i + 2]]
            for i in range(0, 3 * n, 3)]


def decode_tsd_weights(buf, offset: int, length: int,
                       source: str = "<buffer>") -> List[int]:
    """Just the weight column of a TSD record (stored order)."""
    return [edge[2] for edge in decode_tsd_block(buf, offset, length,
                                                 source)]


# ----------------------------------------------------------------------
# GCT record blocks
# ----------------------------------------------------------------------
def encode_gct_block(nodes: Sequence[Sequence[object]],
                     edges: Sequence[Sequence[int]]) -> bytes:
    """``([[tau, [members...]], ...], [[i, j, w], ...])`` → block bytes.

    Members are label positions; the summary prefix (taus + superedge
    triples) is written before any member list so Lemma-3 scores decode
    without touching members.
    """
    parts = [_U32_PAIR.pack(len(nodes), len(edges))]
    taus = [tau for tau, _ in nodes]
    if taus:
        parts.append(struct.pack(f"<{len(taus)}I", *taus))
    for edge in edges:
        parts.append(struct.pack("<III", *edge))
    for _, members in nodes:
        parts.append(struct.pack(f"<{1 + len(members)}I",
                                 len(members), *members))
    return b"".join(parts)


def decode_gct_block(buf, offset: int, length: int,
                     source: str = "<buffer>"
                     ) -> Tuple[List[List[object]], List[List[int]]]:
    """Inverse of :func:`encode_gct_block` (exact-length check)."""
    end = offset + length
    if length < _U32_PAIR.size:
        raise ArtifactFormatError(source, "truncated GCT record header")
    n_nodes, n_edges = _U32_PAIR.unpack_from(buf, offset)
    cursor = offset + _U32_PAIR.size
    need = _U32.size * (n_nodes + 3 * n_edges)
    if cursor + need > end:
        raise ArtifactFormatError(source, "truncated GCT record summary")
    taus = struct.unpack_from(f"<{n_nodes}I", buf, cursor)
    cursor += _U32.size * n_nodes
    edges = []
    for _ in range(n_edges):
        edges.append(list(struct.unpack_from("<III", buf, cursor)))
        cursor += 3 * _U32.size
    nodes: List[List[object]] = []
    for tau in taus:
        if cursor + _U32.size > end:
            raise ArtifactFormatError(source,
                                      "truncated GCT member list")
        (count,) = _U32.unpack_from(buf, cursor)
        cursor += _U32.size
        if cursor + count * _U32.size > end:
            raise ArtifactFormatError(source,
                                      "truncated GCT member list")
        members = list(struct.unpack_from(f"<{count}I", buf, cursor))
        cursor += count * _U32.size
        nodes.append([tau, members])
    if cursor != end:
        raise ArtifactFormatError(
            source, f"GCT record length {length} does not match its "
            "contents")
    return nodes, edges


def decode_gct_summary(buf, offset: int, length: int,
                       source: str = "<buffer>"
                       ) -> Tuple[List[int], List[int]]:
    """``(taus, superedge weights)`` from a GCT record *prefix*.

    This is the lazy-scoring fast path: Lemma 3 needs only these two
    weight multisets, so member lists stay unread (and undecoded).
    Both are returned sorted descending, matching the eager index's
    precomputed arrays.
    """
    if length < _U32_PAIR.size:
        raise ArtifactFormatError(source, "truncated GCT record header")
    n_nodes, n_edges = _U32_PAIR.unpack_from(buf, offset)
    cursor = offset + _U32_PAIR.size
    need = _U32.size * (n_nodes + 3 * n_edges)
    if _U32_PAIR.size + need > length:
        raise ArtifactFormatError(source, "truncated GCT record summary")
    taus = struct.unpack_from(f"<{n_nodes}I", buf, cursor)
    cursor += _U32.size * n_nodes
    flat = struct.unpack_from(f"<{3 * n_edges}I", buf, cursor)
    weights = flat[2::3]
    return sorted(taus, reverse=True), sorted(weights, reverse=True)
