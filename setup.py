"""Setuptools shim.

The offline build environment lacks the ``wheel`` package, so PEP 660
editable installs cannot build an editable wheel.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``python setup.py develop``) fall back to the legacy editable path.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
