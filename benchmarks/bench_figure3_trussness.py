"""Figure 3: edge-trussness distribution on four real-world graphs.

The paper plots the number of edges (log scale) per trussness value on
Wiki-Vote, Email-Enron, Gowalla and Epinions, observing a heavy-tailed,
power-law-like decay: most edges have small trussness (and are
therefore prunable by sparsification), very few have large trussness.
The same shape must emerge on the synthetic analogues.
"""

import pytest

from repro.bench.reporting import format_series
from repro.datasets.registry import FIGURE3_DATASETS, load_dataset
from repro.truss.decomposition import truss_decomposition, trussness_histogram


@pytest.mark.benchmark(group="figure3")
def test_figure3_trussness_distribution(benchmark, report):
    histograms = {}
    for name in FIGURE3_DATASETS:
        tau = truss_decomposition(load_dataset(name))
        histograms[name] = trussness_histogram(tau)

    max_tau = max(max(h) for h in histograms.values())
    xs = list(range(2, max_tau + 1))
    series = {name: [histograms[name].get(k, 0) for k in xs]
              for name in FIGURE3_DATASETS}
    report.add("Figure 3 - edge trussness distribution", format_series(
        "Figure 3: #edges per trussness value (log-decay expected)",
        "tau", series, xs))

    # Shape assertions: heavy low-trussness mass, thin tail.
    for name, hist in histograms.items():
        low_mass = sum(c for k, c in hist.items() if k <= 4)
        high_mass = sum(c for k, c in hist.items() if k > 4)
        assert low_mass > high_mass, name
        # The paper's sparsification statistic: a large fraction of
        # edges is prunable at k=5 (45% on average in the paper).
        total = sum(hist.values())
        prunable = sum(c for k, c in hist.items() if k <= 5)
        assert prunable / total > 0.30, name

    benchmark(lambda: truss_decomposition(load_dataset("wiki-vote")))
