"""Engine planner: batched index reuse vs. fixed-method strategies.

The :class:`repro.engine.QueryEngine` exists for repeated traffic: one
GCT build plus a per-``k`` score-map cache should beat re-running the
online baseline for every query, and the cost-based planner should land
within a whisker of the best fixed strategy without being told the
workload in advance.

The workload replays a realistic service mix — a ``(k, r)`` grid with
heavy threshold repetition — against three strategies:

* **always-online**: a fresh ``online_search`` per query (no state);
* **always-GCT**: the engine forced to ``method="gct"`` (index build
  charged to the first query, cache warm afterwards);
* **planner**: the engine with ``method="auto"``.

Expected shape: always-online scales with queries × |V| ego scans;
the engine strategies pay one build then near-zero marginal cost, so
the batched engine wins on every dataset and the planner matches the
always-GCT total (its decisions converge to the index).
"""

import time

import pytest

from repro.bench.reporting import format_table, speedup
from repro.core.online import online_search
from repro.datasets.registry import load_dataset
from repro.engine import QueryEngine

DATASETS = ("wiki-vote", "email-enron")

#: A repeated-traffic workload: three thresholds, repeated r sweeps.
WORKLOAD = [(k, r) for _ in range(3) for k in (3, 4, 5) for r in (1, 10, 50)]


def _run_always_online(graph):
    start = time.perf_counter()
    results = [online_search(graph, k, r, collect_contexts=False)
               for k, r in WORKLOAD]
    return time.perf_counter() - start, results


def _run_engine(graph, method):
    engine = QueryEngine(graph)
    start = time.perf_counter()
    results = engine.top_r_many(WORKLOAD, method=method,
                                collect_contexts=False)
    return time.perf_counter() - start, results, engine


@pytest.mark.benchmark(group="engine-planner")
def test_engine_planner_vs_fixed_strategies(benchmark, report):
    rows = []
    for name in DATASETS:
        graph = load_dataset(name)
        t_online, online_results = _run_always_online(graph)
        t_gct, gct_results, _ = _run_engine(graph, "gct")
        t_auto, auto_results, engine = _run_engine(graph, "auto")

        # Answer equivalence: every strategy returns the same ranked
        # vertex lists (the canonical ranking contract).
        for base, gct, auto in zip(online_results, gct_results, auto_results):
            expected = [(e.vertex, e.score) for e in base.entries]
            assert [(e.vertex, e.score) for e in gct.entries] == expected
            assert [(e.vertex, e.score) for e in auto.entries] == expected

        # The headline claim: batched engine queries reusing a cached
        # index beat re-running online search on the same workload.
        assert t_gct < t_online, name
        assert t_auto < t_online, name

        stats = engine.stats()
        rows.append([name, len(WORKLOAD),
                     t_online, t_gct, t_auto,
                     round(speedup(t_online, t_auto) or 0.0, 1),
                     stats.cache_hits, stats.cache_misses])

    report.add("Engine planner - batched reuse", format_table(
        ["dataset", "queries", "t_online(s)", "t_gct(s)", "t_auto(s)",
         "speedup", "cache_hits", "cache_misses"],
        rows,
        title=f"Query engine: {len(WORKLOAD)}-query workload, "
              "always-online vs always-GCT vs planner"))

    benchmark(lambda: _run_engine(load_dataset("wiki-vote"), "auto"))
