"""Figure 18: TSD-index vs TCP-index on the Section 8.2 comparison graph.

The same vertex q1 gets two very different forests: TCP weighs edges by
*global* triangle trussness (all five edges weigh 4 — every edge of the
graph lives in a global 4-truss), TSD weighs by *ego* trussness (the
(q2,q3) edge drops to 2 — inside G_N(q1) it closes no triangle).
"""

import pytest

from repro.bench.reporting import format_table
from repro.community.tcp import TCPIndex
from repro.core.tsd import TSDIndex
from repro.datasets.paper import figure18_graph


@pytest.mark.benchmark(group="figure18")
def test_figure18_index_weight_comparison(benchmark, report):
    graph = figure18_graph()
    tcp = TCPIndex.build(graph)
    tsd = TSDIndex.build(graph)

    tcp_weights = {frozenset((u, w)): weight
                   for u, w, weight in tcp.forest("q1")}
    tsd_weights = {frozenset((u, w)): weight
                   for u, w, weight in tsd.forest("q1")}
    rows = []
    for pair in sorted(tcp_weights | tsd_weights,
                       key=lambda p: sorted(map(str, p))):
        u, w = sorted(map(str, pair))
        rows.append([f"({u},{w})",
                     tcp_weights.get(pair), tsd_weights.get(pair)])
    report.add("Figure 18 - TSD vs TCP", format_table(
        ["forest edge", "TCP weight", "TSD weight"],
        rows, title="Figure 18: TCP (global trussness) vs TSD (ego trussness) "
                    "for q1"))

    # Figure 18(b): all TCP weights are 4.
    assert sorted(tcp_weights.values()) == [4, 4, 4, 4, 4]
    # Figure 18(c): TSD carries 3,3,3,3 and a 2 on (q2,q3).
    assert sorted(tsd_weights.values()) == [2, 3, 3, 3, 3]
    assert tsd_weights[frozenset(("q2", "q3"))] == 2

    # The semantic difference in action: globally (q2,q3) is in a
    # 4-truss community; locally q1's ego decomposes at k=3 into the
    # two private triangles.
    assert tcp.edge_trussness("q2", "q3") == 4
    assert tsd.score("q1", 3) == 2

    benchmark(lambda: TCPIndex.build(figure18_graph()))
