"""Extension: quantify the Exp-7 correlation and probe its IC dependence.

The paper validates "structural diversity predicts contagion" under the
independent cascade model with grouped bar charts.  This bench
quantifies the claim with Spearman rank correlations (scipy) and
repeats the analysis under the Linear Threshold model.

Finding (recorded in EXPERIMENTS.md): under IC the association is
positive and highly significant, confirming Exp-7.  Under LT with the
standard uniform ``1/d(v)`` weights it washes out — LT activation
difficulty scales with degree, and high-diversity vertices are
high-degree almost by definition, so the two effects cancel.  The
paper's claim is therefore a statement about *exposure-driven* (IC
style) contagion, which matches its framing of social contagion as
per-contact infection.
"""

import pytest

from repro.analysis import diversity_contagion_correlation, summarize_scores
from repro.bench.reporting import format_table
from repro.bench.runner import gct_index
from repro.datasets.registry import load_dataset
from repro.influence.ic import activation_probabilities
from repro.influence.lt import lt_activation_probabilities
from repro.influence.seeds import ris_seeds

DATASET = "orkut"
K = 4
P = 0.05
RUNS = 400


@pytest.mark.benchmark(group="extension-lt")
def test_extension_lt_and_ic_correlation(benchmark, report):
    graph = load_dataset(DATASET)
    index = gct_index(DATASET)
    scores = {v: index.score(v, K) for v in graph.vertices()}
    summary = summarize_scores(scores)
    seeds = ris_seeds(graph, 50, P, num_samples=600, seed=21)
    targets = [v for v, s in scores.items() if s > 0]

    ic_probs = activation_probabilities(graph, seeds, P, targets=targets,
                                        runs=RUNS, seed=21)
    lt_probs = lt_activation_probabilities(graph, seeds, targets,
                                           runs=RUNS, seed=21)
    ic_corr = diversity_contagion_correlation(scores, ic_probs,
                                              include_zero_scores=False)
    lt_corr = diversity_contagion_correlation(scores, lt_probs,
                                              include_zero_scores=False)

    rows = [
        ["IC", round(ic_corr.spearman_rho, 3), f"{ic_corr.spearman_p:.2e}",
         ic_corr.sample_size],
        ["LT", round(lt_corr.spearman_rho, 3), f"{lt_corr.spearman_p:.2e}",
         lt_corr.sample_size],
    ]
    report.add("Extension - LT vs IC correlation", format_table(
        ["diffusion model", "spearman rho", "p-value", "n"],
        rows,
        title=f"Extension: diversity-contagion rank correlation on "
              f"{DATASET} (k={K}; scores up to {summary.maximum})"))

    # The paper's IC claim: positive and significant.
    assert ic_corr.is_positive and ic_corr.is_significant()
    # Under LT the effect washes out (degree penalty cancels exposure);
    # assert it is weak rather than strongly reversed.
    assert abs(lt_corr.spearman_rho) < 0.3

    benchmark(lambda: lt_activation_probabilities(
        graph, seeds, targets[:100], runs=40, seed=21))
