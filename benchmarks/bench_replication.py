"""Follower sync cost: binary delta shipping vs a full mirror.

The replication layer (``repro.replication.sync``) keeps follower
store roots warm by shipping binary re-versions as byte ranges —
header + offset dictionary + appended heap tail — re-deriving the
base-resident regions from the follower's own copy of the parent
artifact.  The alternative every naive design picks is re-mirroring
the whole store after each update batch.

This bench builds a binary-codec ``IndexStore`` over power-law graphs
(``power_law_graph``, |E| = 5|V|), applies a chain of live-update
batches, and measures three sync passes per size:

* ``bootstrap`` — first replication to an empty follower (everything
  ships whole; this is the unavoidable cost and the naive baseline's
  recurring cost).
* ``delta``     — one incremental pass per update batch (the cadence
  of the background replication thread): only the re-versioned
  artifacts move, and of those only the non-base bytes.
* ``repeat``    — a second incremental pass: nothing moves (the pass
  is pure verification; this is what the background replication
  thread pays at steady state).

Acceptance bars (asserted at the largest size):

* the whole delta chain ships at most ``MAX_DELTA_SHARE`` of the
  bytes ONE fresh full mirror of the final store would ship (a naive
  design pays that mirror per batch, so this bar is conservative);
* the delta chain reuses at least as many follower-local bytes as it
  ships (the base regions dominate the tail for small batches);
* the repeat pass ships zero bytes and syncs zero files;
* after every pass the follower's artifact tree is byte-identical to
  the primary's (the canonical contract, file by file).

Results land in ``benchmarks/out/BENCH_replication.json``
(``make bench-replication``).
"""

from __future__ import annotations

import hashlib
import json
import tempfile
import time
from pathlib import Path

import pytest

from repro.bench.reporting import format_table
from repro.datasets.synthetic import power_law_graph
from repro.replication import replicate_store
from repro.service import DiversityService
from repro.service.store import IndexStore

SIZES = [2_000, 8_000]
UPDATE_BATCHES = 4          # delta chain length per size
EDGES_PER_BATCH = 3         # fresh-vertex inserts per batch
MAX_DELTA_SHARE = 0.5       # delta ships <= 50% of a full mirror
OUT_PATH = Path(__file__).parent / "out" / "BENCH_replication.json"


def _digest_tree(root: Path):
    """{relpath: sha256} over every artifact file under ``root``
    (the store's ``.lock`` and ``manifest.json`` are per-root
    metadata, not replicated bytes)."""
    out = {}
    for path in sorted(root.rglob("*")):
        if path.is_file() and path.name not in (".lock", "manifest.json"):
            rel = str(path.relative_to(root))
            out[rel] = hashlib.sha256(path.read_bytes()).hexdigest()
    return out


def _absent_edges(graph, n, count):
    """``count`` vertex pairs from the sparse tail that are not yet
    adjacent.  Label-stable inserts (no new vertices) are the delta
    layer's fast path: the label and profile regions stay
    base-resident and only the heap tail ships."""
    out = []
    for step in range(1, n):
        for i in range(n // 2, n - step):
            j = i + step
            if not graph.has_edge(i, j):
                out.append((i, j))
                if len(out) == count:
                    return out
    raise AssertionError("graph too dense for update batches")


def _timed_pass(source: Path, dest: Path):
    start = time.perf_counter()
    report = replicate_store(source, dest)
    return report, time.perf_counter() - start


@pytest.mark.benchmark(group="replication")
def test_bench_replication_delta_vs_full(benchmark, report):
    rows = []
    sizes_out = []
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        for n in SIZES:
            primary = tmp / f"primary-{n}"
            follower = tmp / f"follower-{n}"
            graph = power_law_graph(n, edges_per_vertex=5, seed=42)
            service = DiversityService.cold(
                graph, store=IndexStore(primary, codec="bin"))

            bootstrap, boot_s = _timed_pass(primary, follower)
            assert bootstrap.files_full >= 2, bootstrap.summary()
            assert _digest_tree(primary) == _digest_tree(follower)

            # Live-update chain, synced after each batch the way the
            # background replication thread runs: every re-version's
            # parent is already follower-resident, so only the header,
            # offset dictionary and appended heap tail ship.
            edges = _absent_edges(graph, n,
                                  UPDATE_BATCHES * EDGES_PER_BATCH)
            delta_shipped = delta_reused = delta_files = 0
            delta_s = 0.0
            for batch in range(UPDATE_BATCHES):
                service.apply_updates([
                    ("insert", u, v)
                    for u, v in edges[batch * EDGES_PER_BATCH:
                                      (batch + 1) * EDGES_PER_BATCH]])
                delta, pass_s = _timed_pass(primary, follower)
                assert delta.files_delta >= 1, delta.summary()
                delta_shipped += delta.bytes_shipped
                delta_reused += delta.bytes_reused
                delta_files += delta.files_delta
                delta_s += pass_s
            assert _digest_tree(primary) == _digest_tree(follower)

            # The naive baseline: a fresh mirror of the now-larger
            # store (what a design without standing followers pays to
            # bring a replacement up).  Even here the sync layer
            # deltas later versions against earlier ones shipped in
            # the same pass, so this baseline is conservative.
            mirror, mirror_s = _timed_pass(primary, tmp / f"mirror-{n}")
            assert mirror.files_skipped == 0, mirror.summary()

            repeat, repeat_s = _timed_pass(primary, follower)
            assert repeat.bytes_shipped == 0, repeat.summary()
            assert repeat.files_synced == 0, repeat.summary()

            share = delta_shipped / max(mirror.bytes_shipped, 1)
            rows.append([n, UPDATE_BATCHES,
                         f"{mirror.bytes_shipped:,}",
                         f"{delta_shipped:,} ({share:.1%})",
                         f"{delta_reused:,}",
                         f"{delta_s:.3f}s", f"{mirror_s:.3f}s"])
            sizes_out.append({
                "n": n,
                "update_batches": UPDATE_BATCHES,
                "bootstrap_bytes": bootstrap.bytes_shipped,
                "bootstrap_seconds": round(boot_s, 4),
                "full_mirror_bytes": mirror.bytes_shipped,
                "full_mirror_seconds": round(mirror_s, 4),
                "delta_bytes_shipped": delta_shipped,
                "delta_bytes_reused": delta_reused,
                "delta_files": delta_files,
                "delta_seconds": round(delta_s, 4),
                "delta_share_of_full": round(share, 4),
                "repeat_bytes": repeat.bytes_shipped,
                "repeat_seconds": round(repeat_s, 4),
            })

        largest = sizes_out[-1]
        assert largest["delta_share_of_full"] <= MAX_DELTA_SHARE, largest
        assert (largest["delta_bytes_reused"]
                >= largest["delta_bytes_shipped"]), largest
        assert largest["repeat_bytes"] == 0, largest

        # Steady-state verification scan is the hot recurring path of
        # the background replication thread — that's what we time.
        biggest = tmp / f"primary-{SIZES[-1]}"
        target = tmp / f"follower-{SIZES[-1]}"
        benchmark(lambda: replicate_store(biggest, target))

        OUT_PATH.parent.mkdir(exist_ok=True)
        OUT_PATH.write_text(json.dumps({
            "bench": "follower sync: delta shipping vs full mirror",
            "max_delta_share_bar": MAX_DELTA_SHARE,
            "sizes": sizes_out,
        }, indent=2) + "\n", encoding="utf-8")

    report.add(
        "Follower sync: delta shipping vs full mirror (|E| = 5|V|)",
        format_table(
            ["n", "batches", "full mirror B", "delta B (share)",
             "reused B", "delta t", "mirror t"],
            rows))
