"""Table 2 / Exp-1: runtime and search space of baseline, bound, TSD.

Paper shape (k=3, r=100): TSD beats baseline by 2-4 orders of magnitude
(speedup ratio Rt from 265 to 2,745); the bound framework shrinks the
search space massively versus |V| (pruning ratio Rs from 3.1 to 3,355),
with TSD pruning at least as hard as bound.
"""

import pytest

from repro.bench.reporting import format_table, speedup
from repro.bench.runner import measure, tsd_index
from repro.datasets.registry import dataset_names

K, R = 3, 100


@pytest.mark.benchmark(group="table2")
def test_table2_runtime_and_search_space(benchmark, report):
    rows = []
    for name in dataset_names():
        tsd_index(name)  # construction charged separately (Table 3)
        base = measure("baseline", name, K, R)
        bound = measure("bound", name, K, R)
        tsd = measure("TSD", name, K, R)
        rt = speedup(base.seconds, tsd.seconds)
        rs = speedup(base.search_space, tsd.search_space)
        rows.append([name,
                     base.seconds, bound.seconds, tsd.seconds,
                     None if rt is None else round(rt, 1),
                     base.search_space, bound.search_space,
                     tsd.search_space,
                     None if rs is None else round(rs, 1)])

        # Paper shape: TSD is the fastest, baseline the slowest, and
        # both prunings shrink the search space dramatically.  (The
        # paper found S_TSD <= S_bound on its datasets; on the scaled
        # analogues the two bounds trade blows within a small factor,
        # so the assertion allows that.)
        assert tsd.seconds <= base.seconds, name
        assert bound.search_space <= base.search_space, name
        assert tsd.search_space <= base.search_space, name
        assert tsd.search_space <= int(bound.search_space * 1.5) + 10, name
        # Answer quality: identical top-score multisets.
        assert (sorted(base.top_scores, reverse=True)
                == sorted(tsd.top_scores, reverse=True)), name

    report.add("Table 2 - method comparison", format_table(
        ["dataset", "t_base(s)", "t_bound(s)", "t_TSD(s)", "Rt",
         "S_base", "S_bound", "S_TSD", "Rs"],
        rows,
        title=f"Table 2: runtime and search space (k={K}, r={R})"))

    benchmark(lambda: measure("TSD", "wiki-vote", K, R))
