"""Figure 14 / Exp-8: number of activated vertices among each model's top-r.

The paper selects top-r vertices with Random / Comp-Div / Core-Div /
Truss-Div and counts how many get activated under IC from influence-
maximised seeds.  Shape: Truss-Div's selections are activated the most;
Random's the least.
"""

import pytest

from repro.bench.reporting import format_series
from repro.bench.runner import gct_index
from repro.datasets.registry import SWEEP_DATASETS, load_dataset
from repro.influence.contagion import activated_among_targets
from repro.influence.seeds import ris_seeds
from repro.models import CompDivModel, CoreDivModel, TrussDivModel, RandomModel

K = 4
P = 0.05
RUNS = 300
RS = [50, 60, 70, 80, 90, 100]


@pytest.mark.benchmark(group="figure14")
@pytest.mark.parametrize("dataset", SWEEP_DATASETS)
def test_figure14_activated_among_topr(benchmark, report, dataset):
    graph = load_dataset(dataset)
    seeds = ris_seeds(graph, 50, P, num_samples=600, seed=14)
    models = {
        "Truss-Div": TrussDivModel(index=gct_index(dataset)),
        "Core-Div": CoreDivModel(),
        "Comp-Div": CompDivModel(),
        "Random": RandomModel(seed=14),
    }
    # Select each model's top-300 once, slice per r.
    selections = {name: model.select(graph, K, max(RS))
                  for name, model in models.items()}
    series = {name: [] for name in models}
    for r in RS:
        for name in models:
            value = activated_among_targets(
                graph, selections[name][:r], seeds, P, runs=RUNS, seed=14)
            series[name].append(round(value, 2))

    report.add(f"Figure 14 - activated top-r ({dataset})", format_series(
        f"Figure 14: activated vertices among top-r on {dataset} "
        f"(k={K}, p={P})",
        "r", series, RS))

    # Paper shape: Truss-Div beats Random across the whole sweep.
    assert sum(series["Truss-Div"]) >= sum(series["Random"]), dataset

    benchmark(lambda: activated_among_targets(
        graph, selections["Truss-Div"][:50], seeds, P, runs=40, seed=14))
