"""Figure 8 / Exp-2: runtime of all methods varying k.

Paper shape on Gowalla/LiveJournal/Orkut: GCT is the clear winner for
every k; TSD is next; bound and baseline trail by orders of magnitude;
Comp-Div and Core-Div (full model searches) sit between baseline and
the index methods on large graphs.
"""

import time

import pytest

from repro.bench.reporting import format_series
from repro.bench.runner import run_method, tsd_index, gct_index
from repro.datasets.registry import SWEEP_DATASETS, load_dataset
from repro.models import CompDivModel, CoreDivModel

KS = [2, 3, 4, 5, 6]
R = 100


def _model_time(model, graph, k):
    start = time.perf_counter()
    model.top_r(graph, k, R)
    return time.perf_counter() - start


@pytest.mark.benchmark(group="figure8")
@pytest.mark.parametrize("dataset", SWEEP_DATASETS)
def test_figure8_runtime_vs_k(benchmark, report, dataset):
    graph = load_dataset(dataset)
    tsd_index(dataset)
    gct_index(dataset)
    series = {m: [] for m in
              ("baseline", "bound", "TSD", "GCT", "Comp-Div", "Core-Div")}
    for k in KS:
        for method in ("baseline", "bound", "TSD", "GCT"):
            result = run_method(method, dataset, k, R, collect_contexts=False)
            series[method].append(round(result.elapsed_seconds, 4))
        series["Comp-Div"].append(round(_model_time(CompDivModel(), graph, k), 4))
        series["Core-Div"].append(round(_model_time(CoreDivModel(), graph, k), 4))

    report.add(f"Figure 8 - runtime vs k ({dataset})", format_series(
        f"Figure 8: running time in seconds vs k on {dataset} (r={R})",
        "k", series, KS))

    # Paper shape: the index methods beat the baseline at every k, and
    # GCT wins overall (compare totals to absorb per-point noise).
    for k_idx in range(len(KS)):
        assert series["TSD"][k_idx] <= series["baseline"][k_idx]
        assert series["GCT"][k_idx] <= series["baseline"][k_idx]
    assert sum(series["GCT"]) <= sum(series["TSD"])
    assert sum(series["GCT"]) <= sum(series["Comp-Div"])
    assert sum(series["GCT"]) <= sum(series["Core-Div"])

    benchmark(lambda: run_method("GCT", dataset, 3, R, collect_contexts=False))
