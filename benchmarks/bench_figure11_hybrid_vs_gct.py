"""Figure 11 / Exp-4: Hybrid vs GCT query time varying r.

Paper shape: Hybrid is competitive at r = 1 but degrades linearly with
r (it recomputes each answer's social contexts online with Algorithm 2)
while GCT stays flat (contexts come straight from the index); GCT is
clearly faster for larger r on every dataset.
"""

import pytest

from repro.bench.reporting import format_series
from repro.bench.runner import gct_index, hybrid_searcher
from repro.datasets.registry import SWEEP_DATASETS

K = 3
RS = [1, 60, 120, 180, 240, 300]


@pytest.mark.benchmark(group="figure11")
@pytest.mark.parametrize("dataset", SWEEP_DATASETS)
def test_figure11_hybrid_vs_gct(benchmark, report, dataset):
    gct = gct_index(dataset)
    hybrid = hybrid_searcher(dataset)
    series = {"Hybrid": [], "GCT": []}
    for r in RS:
        # Hybrid must pay the online context cost — that is its design.
        h = hybrid.top_r(K, r, collect_contexts=True)
        g = gct.top_r(K, r, collect_contexts=True)
        series["Hybrid"].append(round(h.elapsed_seconds, 4))
        series["GCT"].append(round(g.elapsed_seconds, 4))
        assert (sorted(h.scores, reverse=True)
                == sorted(g.scores, reverse=True)), r

    report.add(f"Figure 11 - Hybrid vs GCT ({dataset})", format_series(
        f"Figure 11: query seconds vs r on {dataset} (k={K})",
        "r", series, RS))

    # Paper shape: GCT wins clearly at large r.
    assert series["GCT"][-1] <= series["Hybrid"][-1]
    assert sum(series["GCT"]) <= sum(series["Hybrid"])

    benchmark(lambda: gct.top_r(K, 300, collect_contexts=True))
