"""Figure 10 / Exp-5: TSD query time varying k and r.

Paper shape: query time mostly *decreases* as k grows (fewer qualifying
forest edges, harder pruning) and grows only slightly with r (stable
efficiency).
"""

import pytest

from repro.bench.reporting import format_series
from repro.bench.runner import tsd_index
from repro.datasets.registry import SWEEP_DATASETS

KS = [3, 4, 5]
RS = [50, 100, 150, 200, 250, 300]


@pytest.mark.benchmark(group="figure10")
@pytest.mark.parametrize("dataset", SWEEP_DATASETS)
def test_figure10_tsd_vary_k_r(benchmark, report, dataset):
    index = tsd_index(dataset)
    series = {}
    for k in KS:
        times = []
        for r in RS:
            result = index.top_r(k, r, collect_contexts=False)
            times.append(round(result.elapsed_seconds, 5))
        series[f"k={k}"] = times

    report.add(f"Figure 10 - TSD vs k,r ({dataset})", format_series(
        f"Figure 10: TSD query seconds vs r on {dataset}",
        "r", series, RS))

    # Paper shape: stability — no r-point explodes versus the k-curve
    # average (the paper notes only a slight increase with r).
    for k, times in series.items():
        avg = sum(times) / len(times)
        assert max(times) <= max(10 * avg, 0.05), (k, times)

    benchmark(lambda: index.top_r(4, 100, collect_contexts=False))
