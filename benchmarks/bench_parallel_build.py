"""Index build pipeline: per-vertex vs shared-pass vs worker pool.

The PR 4 acceptance bench.  On the Figure-12 scalability family it
measures wall-clock TSD builds under every strategy —

* ``per-vertex``   — the legacy Algorithm 5 loop (``jobs=None``);
* ``shared``       — one triangle pass, in-process decomposition
  (``jobs=1``);
* ``jobs=2/4``     — the worker pool, *forced* (bypassing the CPU-budget
  downgrade) so the numbers honestly show what process fan-out costs or
  saves on this machine;
* ``jobs=4 (auto)``— ``TSDIndex.build(graph, jobs=4)`` as a user would
  call it: the BuildPlan clamps to the hardware budget, so on a 1-CPU
  runner this resolves to the serial shared pass.

Every strategy's payload is asserted byte-identical to the per-vertex
build.  Results are written machine-readably to
``benchmarks/out/BENCH_build.json`` (speedups recorded per size), and
the reproduced claim is the shared-pass one: the single shared triangle
pass alone beats the per-vertex build on every size — parallel wins on
top of that require actual spare cores, which the JSON records via
``cpu_budget``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench.reporting import format_table
from repro.build import BuildPlan, MODE_PARALLEL, available_cpus
from repro.core.tsd import TSDIndex
from repro.datasets.synthetic import power_law_graph

SIZES = [1_000, 2_000, 4_000, 8_000]
OUT_PATH = Path(__file__).parent / "out" / "BENCH_build.json"


def _timed(fn, repeats: int = 3):
    """Best-of-N wall clock (interpreter warm-up must not skew ratios)."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return result, best


def _payload(index) -> str:
    return json.dumps(index.to_payload(include_profile=False))


@pytest.mark.benchmark(group="parallel-build")
def test_bench_parallel_build(benchmark, report):
    strategies = [
        ("shared", lambda g: TSDIndex.build(g, jobs=1)),
        ("jobs=2 (forced)", lambda g: TSDIndex.build(
            g, plan=BuildPlan(MODE_PARALLEL, 2, "bench"))),
        ("jobs=4 (forced)", lambda g: TSDIndex.build(
            g, plan=BuildPlan(MODE_PARALLEL, 4, "bench"))),
        ("jobs=4 (auto)", lambda g: TSDIndex.build(g, jobs=4)),
    ]
    rows = []
    results = []
    for n in SIZES:
        graph = power_law_graph(n, edges_per_vertex=5, seed=42)
        baseline, base_seconds = _timed(lambda: TSDIndex.build(graph))
        reference = _payload(baseline)
        row = [n, round(base_seconds, 3)]
        entry = {"n": n, "edges": graph.num_edges,
                 "per_vertex_seconds": round(base_seconds, 4),
                 "strategies": {}}
        for name, build in strategies:
            index, seconds = _timed(lambda: build(graph))
            assert _payload(index) == reference, (name, n)
            speedup = base_seconds / max(seconds, 1e-9)
            row.append(f"{seconds:.3f} ({speedup:.2f}x)")
            entry["strategies"][name] = {
                "seconds": round(seconds, 4),
                "speedup_vs_per_vertex": round(speedup, 3),
            }
        rows.append(row)
        results.append(entry)

    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps({
        "bench": "parallel index build (Figure 12 family, |E| = 5|V|)",
        "cpu_budget": available_cpus(),
        "sizes": results,
    }, indent=2) + "\n", encoding="utf-8")

    report.add("PR4 - parallel build pipeline", format_table(
        ["|V|", "per-vertex(s)"] + [name for name, _ in strategies],
        rows,
        title="Index build: one shared triangle pass vs per-vertex "
              "(payloads byte-identical; speedups vs per-vertex)"))

    # Reproduced claim: the serial shared pass alone beats the
    # per-vertex build — the measured speedups live in the JSON and the
    # table above.  The gate here is a *regression* guard, not a
    # performance assertion: it only trips when the shared pass is
    # clearly slower than the legacy build at the largest (most
    # timing-stable) size, with enough slack that CI-runner noise on a
    # ~1s cell cannot fail a correct build.  The >= 2x target at 4
    # workers is recorded, not asserted: it additionally needs spare
    # cores, which CI runners do not guarantee.
    largest = results[-1]
    assert (largest["strategies"]["shared"]["speedup_vs_per_vertex"]
            > 0.75), largest

    benchmark(lambda: TSDIndex.build(
        power_law_graph(1_000, 5, seed=42), jobs=1))
