"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but the paper's Section 6 motivates each
optimisation individually; these benches isolate them:

* bitmap vs hash-set truss decomposition on ego-networks;
* one-shot global vs per-vertex ego-network extraction;
* Algorithm 4's two prunings (sparsification, upper bound) toggled
  independently.
"""

import time

import pytest

from repro.bench.reporting import format_table
from repro.core.bound import bound_search
from repro.datasets.registry import load_dataset
from repro.graph.egonet import ego_network, iter_ego_edge_lists
from repro.truss.bitmap_decomposition import bitmap_truss_decomposition
from repro.truss.decomposition import truss_decomposition

DATASET = "livejournal"


@pytest.mark.benchmark(group="ablations")
def test_ablation_bitmap_vs_hash_decomposition(benchmark, report):
    graph = load_dataset(DATASET)
    ego_lists = list(iter_ego_edge_lists(graph))

    start = time.perf_counter()
    for v, edges in ego_lists:
        if edges:
            bitmap_truss_decomposition(
                sorted(graph.neighbors(v), key=graph.vertex_index), edges)
    bitmap_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for v, _ in ego_lists:
        truss_decomposition(ego_network(graph, v))
    hash_seconds = time.perf_counter() - start

    report.add("Ablation - bitmap vs hash peeling", format_table(
        ["variant", "seconds"],
        [["hash-set peeling (+ extraction)", round(hash_seconds, 3)],
         ["bitmap peeling (pre-extracted)", round(bitmap_seconds, 3)]],
        title=f"Ablation: ego truss decomposition on {DATASET}"))

    assert bitmap_seconds <= hash_seconds * 1.2

    sample = [item for item in ego_lists if item[1]][:50]
    benchmark(lambda: [bitmap_truss_decomposition(
        sorted(graph.neighbors(v), key=graph.vertex_index), edges)
        for v, edges in sample])


@pytest.mark.benchmark(group="ablations")
def test_ablation_ego_extraction(benchmark, report):
    graph = load_dataset(DATASET)

    start = time.perf_counter()
    total_oneshot = sum(len(edges) for _, edges in iter_ego_edge_lists(graph))
    oneshot_seconds = time.perf_counter() - start

    start = time.perf_counter()
    total_pervertex = sum(ego_network(graph, v).num_edges
                          for v in graph.vertices())
    pervertex_seconds = time.perf_counter() - start

    assert total_oneshot == total_pervertex
    report.add("Ablation - ego extraction", format_table(
        ["variant", "seconds"],
        [["per-vertex (6 touches per triangle)", round(pervertex_seconds, 3)],
         ["one-shot global (3 touches)", round(oneshot_seconds, 3)]],
        title=f"Ablation: ego-network extraction on {DATASET}"))
    assert oneshot_seconds <= pervertex_seconds

    benchmark(lambda: sum(len(e) for _, e in iter_ego_edge_lists(graph)))


@pytest.mark.benchmark(group="ablations")
def test_ablation_csr_vs_hash_global_decomposition(benchmark, report):
    """CPython inverts the C++ intuition: hash-set peeling (C-implemented
    intersections) beats array-based two-pointer peeling.  Recorded as
    a negative result; the CSR form remains the memory-lean option."""
    from repro.graph.csr import CSRGraph
    from repro.truss.csr_decomposition import csr_truss_decomposition

    graph = load_dataset(DATASET)
    csr = CSRGraph.from_graph(graph)

    start = time.perf_counter()
    hash_result = truss_decomposition(graph)
    hash_seconds = time.perf_counter() - start

    start = time.perf_counter()
    csr_result = csr_truss_decomposition(csr)
    csr_seconds = time.perf_counter() - start

    assert csr_result == hash_result
    report.add("Ablation - CSR vs hash global peeling", format_table(
        ["variant", "seconds"],
        [["hash-set peeling (set & set in C)", round(hash_seconds, 3)],
         ["CSR two-pointer peeling (pure Python)", round(csr_seconds, 3)]],
        title=f"Ablation: whole-graph truss decomposition on {DATASET} "
              "(negative result: arrays lose in CPython)"))

    benchmark(lambda: truss_decomposition(graph))


@pytest.mark.benchmark(group="ablations")
def test_ablation_bound_components(benchmark, report):
    graph = load_dataset(DATASET)
    k, r = 3, 100
    variants = {
        "neither (=baseline on G)": dict(use_sparsification=False,
                                         use_upper_bound=False),
        "sparsification only": dict(use_sparsification=True,
                                    use_upper_bound=False),
        "upper bound only": dict(use_sparsification=False,
                                 use_upper_bound=True),
        "both (Algorithm 4)": dict(use_sparsification=True,
                                   use_upper_bound=True),
    }
    rows = []
    spaces = {}
    for label, flags in variants.items():
        result = bound_search(graph, k, r, collect_contexts=False, **flags)
        spaces[label] = result.search_space
        rows.append([label, round(result.elapsed_seconds, 3),
                     result.search_space])
    report.add("Ablation - Algorithm 4 prunings", format_table(
        ["variant", "seconds", "search space"],
        rows, title=f"Ablation: Algorithm 4 components on {DATASET} "
                    f"(k={k}, r={r})"))

    assert spaces["both (Algorithm 4)"] <= spaces["sparsification only"]
    assert spaces["both (Algorithm 4)"] <= spaces["upper bound only"]
    assert spaces["sparsification only"] <= spaces["neither (=baseline on G)"]

    benchmark(lambda: bound_search(graph, k, r, collect_contexts=False))
