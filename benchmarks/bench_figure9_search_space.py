"""Figure 9 / Exp-2: search space of baseline, bound and TSD varying k.

Paper shape: baseline always evaluates |V| vertices; bound prunes that
by one to two orders of magnitude thanks to sparsification + Lemma 2;
TSD prunes hardest thanks to the tighter forest bound.
"""

import pytest

from repro.bench.reporting import format_series
from repro.bench.runner import run_method, tsd_index
from repro.datasets.registry import SWEEP_DATASETS, load_dataset

KS = [2, 3, 4, 5, 6]
R = 100


@pytest.mark.benchmark(group="figure9")
@pytest.mark.parametrize("dataset", SWEEP_DATASETS)
def test_figure9_search_space(benchmark, report, dataset):
    tsd_index(dataset)
    series = {m: [] for m in ("baseline", "bound", "TSD")}
    for k in KS:
        for method in series:
            result = run_method(method, dataset, k, R, collect_contexts=False)
            series[method].append(result.search_space)

    report.add(f"Figure 9 - search space vs k ({dataset})", format_series(
        f"Figure 9: search space vs k on {dataset} (r={R})",
        "k", series, KS))

    n = load_dataset(dataset).num_vertices
    for i, k in enumerate(KS):
        assert series["baseline"][i] == n
        assert series["bound"][i] <= n
        assert series["TSD"][i] <= n
        # At k >= 3 the forest bound prunes to the same order as the
        # Algorithm 4 bound (the paper found it strictly tighter on its
        # datasets; the analogues allow a small factor either way).
        if k >= 3:
            assert series["TSD"][i] <= int(series["bound"][i] * 1.5) + R

    benchmark(lambda: run_method("TSD", dataset, 3, R, collect_contexts=False))
