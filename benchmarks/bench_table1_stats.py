"""Table 1: network statistics of every dataset.

Paper columns: |V|, |E|, d_max, tau*_G, tau*_ego, T.  Absolute values
differ (scaled synthetic analogues); the structural relationships the
paper relies on must hold: tau*_ego = tau*_G - 1 on every dataset, and
orkut is the densest / most triangle-rich graph.
"""

import pytest

from repro.bench.reporting import format_table
from repro.datasets.registry import dataset_names, load_dataset, paper_table1
from repro.graph.stats import compute_stats


@pytest.mark.benchmark(group="table1")
def test_table1_network_statistics(benchmark, report):
    rows = []
    stats_by_name = {}
    for name in dataset_names():
        stats = compute_stats(load_dataset(name), name=name)
        stats_by_name[name] = stats
        paper = paper_table1()[name]
        rows.append([name, stats.num_vertices, stats.num_edges,
                     stats.max_degree, stats.tau_max, stats.tau_ego_max,
                     stats.triangles,
                     f"paper: tau*={paper[3]}, T={paper[5]:,}"])
    report.add("Table 1 - network statistics", format_table(
        ["name", "|V|", "|E|", "dmax", "tau*G", "tau*ego", "T", "reference"],
        rows, title="Table 1: network statistics (scaled analogues)"))

    # The invariant the paper's Table 1 exhibits on all eight datasets.
    for name, stats in stats_by_name.items():
        assert stats.tau_ego_max == stats.tau_max - 1, name

    # Benchmark: the full statistics computation on one dataset.
    benchmark(lambda: compute_stats(load_dataset("wiki-vote"), name="bench"))
