"""Benchmark-suite plumbing.

Every ``bench_*`` test times its core operation through the
pytest-benchmark fixture *and* renders the corresponding paper table or
figure as text.  The rendered artefacts are collected here and printed
in the terminal summary (so ``pytest benchmarks/ --benchmark-only``
output contains the full reproduction report) as well as written to
``benchmarks/out/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path

import pytest

_OUT_DIR = Path(__file__).parent / "out"


class ReportCollector:
    """Ordered store of rendered experiment artefacts."""

    def __init__(self) -> None:
        self.sections: "OrderedDict[str, str]" = OrderedDict()

    def add(self, title: str, text: str) -> None:
        """Register one rendered table/figure and persist it to disk."""
        self.sections[title] = text
        _OUT_DIR.mkdir(exist_ok=True)
        safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in title)
        (_OUT_DIR / f"{safe}.txt").write_text(text + "\n", encoding="utf-8")


_collector = ReportCollector()


@pytest.fixture(scope="session")
def report() -> ReportCollector:
    return _collector


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _collector.sections:
        return
    terminalreporter.write_sep("=", "paper reproduction report")
    for title, text in _collector.sections.items():
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)
