"""Extension: dynamic TSD maintenance vs from-scratch rebuilds.

The paper's Section 5.3 remarks that TSD-index updates on dynamic
graphs are "promising to be further developed".  This bench measures
the implemented maintenance (`repro.core.dynamic.DynamicTSDIndex`):
repairing the {u, v} ∪ (N(u) ∩ N(v)) ego-forests after an edge update
should beat rebuilding the whole index by a wide margin, because the
affected set is tiny on sparse graphs.
"""

import random
import time

import pytest

from repro.bench.reporting import format_table
from repro.core.dynamic import DynamicTSDIndex
from repro.core.tsd import TSDIndex
from repro.datasets.registry import load_dataset

DATASET = "gowalla"
NUM_UPDATES = 40


@pytest.mark.benchmark(group="extension-dynamic")
def test_extension_dynamic_maintenance(benchmark, report):
    graph = load_dataset(DATASET)
    dyn = DynamicTSDIndex(graph)
    rng = random.Random(99)
    vertices = list(graph.vertices())

    # A churn workload: insert a random absent edge, delete it again.
    pairs = []
    while len(pairs) < NUM_UPDATES // 2:
        u, v = rng.sample(vertices, 2)
        if not dyn.graph.has_edge(u, v):
            pairs.append((u, v))

    start = time.perf_counter()
    for u, v in pairs:
        dyn.insert_edge(u, v)
    for u, v in pairs:
        dyn.delete_edge(u, v)
    incremental_seconds = time.perf_counter() - start
    repaired = dyn.rebuilt_vertices

    start = time.perf_counter()
    rebuilt = TSDIndex.build(dyn.graph)
    one_rebuild_seconds = time.perf_counter() - start

    per_update = incremental_seconds / NUM_UPDATES
    report.add("Extension - dynamic maintenance", format_table(
        ["quantity", "value"],
        [["updates applied", NUM_UPDATES],
         ["ego-forests repaired", repaired],
         ["total maintenance (s)", round(incremental_seconds, 4)],
         ["mean per update (s)", round(per_update, 5)],
         ["one full rebuild (s)", round(one_rebuild_seconds, 4)],
         ["rebuilds per update equivalent",
          round(per_update / one_rebuild_seconds, 4)]],
        title=f"Extension: incremental TSD maintenance on {DATASET}"))

    # Consistency after churn: identical to a fresh build.
    for v in rng.sample(vertices, 25):
        for k in (2, 3, 5):
            assert dyn.score(v, k) == rebuilt.score(v, k)

    # The locality win: one update costs far less than one rebuild.
    assert per_update < one_rebuild_seconds / 10

    u, v = pairs[0]

    def churn_once():
        dyn.insert_edge(u, v)
        dyn.delete_edge(u, v)

    benchmark(churn_once)
