"""Cluster throughput: routed QPS through worker processes vs one process.

The cluster exists to break the single-process GIL cap: with W worker
processes and C spare cores, routed throughput should approach
``min(W, C)`` times the single-process HTTP number for CPU-bound query
mixes.  This benchmark measures what *this* container actually
delivers:

* **single**: ``repro serve`` shape — one process, one
  :class:`DiversityRouter` behind the stdlib HTTP front;
* **cluster w=1/2/4**: the same graphs behind a
  :class:`ShardedCluster` frontend with 1, 2, and 4 worker processes
  (w=1 isolates the extra proxy hop; w>=2 adds real parallelism).

Several client threads drive each path over keep-alive connections,
all thresholds pre-warmed (the steady state of a hot fleet).  Numbers
are **recorded, not asserted** — a 1-CPU CI container has no spare
cores, so the honest result there is "sharding adds a hop and no
speedup"; the JSON carries the CPU budget so readers can interpret the
ratios.  The only hard assertions are correctness: every path returns
byte-identical answers.

Results land in ``benchmarks/out/BENCH_cluster.json`` (`make
bench-cluster`).
"""

import json
import threading
import time
from pathlib import Path

import pytest

from repro.bench.reporting import format_table
from repro.build.plan import available_cpus
from repro.cluster import ShardedCluster
from repro.datasets.synthetic import powerlaw_cluster
from repro.server import DiversityRouter, ServerClient, serve

#: Graphs hosted by every path; traffic round-robins across them.
FLEET = 6

#: Cache-hot query mix (thresholds pre-warmed before timing).
QUERIES = [(3, 10), (4, 5), (3, 1), (4, 10)]

#: Concurrent client threads per path (the regime sharding targets).
CLIENT_THREADS = 4

#: Timed queries per client thread.
N_PER_THREAD = 60

WORKER_COUNTS = (1, 2, 4)

OUT_PATH = Path(__file__).parent / "out" / "BENCH_cluster.json"


def _graphs():
    return {f"g{i}": powerlaw_cluster(150, 4, 0.5, seed=31 + i)
            for i in range(FLEET)}


def _drive(base_url, names):
    """CLIENT_THREADS keep-alive clients hammer the endpoint; returns
    aggregate QPS over the slowest thread's wall clock."""
    def worker(thread_id, elapsed_out):
        client = ServerClient(base_url)
        try:
            start = time.perf_counter()
            for i in range(N_PER_THREAD):
                name = names[(thread_id + i) % len(names)]
                k, r = QUERIES[i % len(QUERIES)]
                client.top_r(name, k=k, r=r)
            elapsed_out[thread_id] = time.perf_counter() - start
        finally:
            client.close()

    elapsed = {}
    threads = [threading.Thread(target=worker, args=(i, elapsed))
               for i in range(CLIENT_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return (CLIENT_THREADS * N_PER_THREAD) / max(elapsed.values())


def _warm(base_url, names):
    client = ServerClient(base_url)
    try:
        for name in names:
            for k, r in QUERIES:
                client.top_r(name, k=k, r=r)
    finally:
        client.close()


@pytest.mark.benchmark(group="cluster-throughput")
def test_bench_cluster_throughput(benchmark, report):
    graphs = _graphs()
    names = sorted(graphs)

    # -- single process: the repro serve baseline -----------------------
    router = DiversityRouter()
    for name, graph in graphs.items():
        router.add_graph(name, graph)
    server = serve(router, port=0)
    single_base = f"http://127.0.0.1:{server.server_port}"
    _warm(single_base, names)
    reference = {}
    probe = ServerClient(single_base)
    for name in names:
        wire = probe.top_r(name, k=3, r=10)
        reference[name] = (json.dumps(wire["vertices"]),
                           json.dumps(wire["scores"]))
    qps_single = _drive(single_base, names)
    probe.close()
    server.shutdown()
    server.server_close()

    # -- cluster at increasing worker counts ----------------------------
    results = {"single": {"qps": round(qps_single, 1)}}
    rows = [["single process", "-", round(qps_single), "1.00x"]]
    for workers in WORKER_COUNTS:
        with ShardedCluster(workers=workers).start(port=0) as cluster:
            for name, graph in graphs.items():
                cluster.add_graph(name, graph=graph)
            _warm(cluster.url, names)
            # Correctness bar: the cluster changes no answer's bytes.
            check = ServerClient(cluster.url)
            for name in names:
                wire = check.top_r(name, k=3, r=10)
                assert (json.dumps(wire["vertices"]),
                        json.dumps(wire["scores"])) == reference[name], name
            check.close()
            qps = _drive(cluster.url, names)
        results[f"cluster_w{workers}"] = {"qps": round(qps, 1)}
        rows.append([f"cluster, {workers} worker(s)", workers, round(qps),
                     f"{qps / qps_single:.2f}x"])

    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps({
        "bench": "routed HTTP top-r throughput, "
                 f"{FLEET} graphs, {CLIENT_THREADS} client threads",
        "cpu_budget": available_cpus(),
        "note": "speedups need spare cores; on a 1-CPU container the "
                "honest expectation is ~1x minus the proxy hop",
        "paths": results,
    }, indent=2) + "\n", encoding="utf-8")

    report.add("Cluster - process-sharded throughput", format_table(
        ["path", "workers", "qps", "vs single"],
        rows,
        title=f"Cache-hot HTTP top-r throughput "
              f"({CLIENT_THREADS} threads, {FLEET} graphs, "
              f"{available_cpus()} CPU(s) available)"))

    # pytest-benchmark hook: time the single-request hot path once more.
    with ShardedCluster(workers=2).start(port=0) as cluster:
        for name, graph in graphs.items():
            cluster.add_graph(name, graph=graph)
        client = ServerClient(cluster.url)
        _warm(cluster.url, names)
        benchmark(lambda: client.top_r("g0", k=3, r=10))
        client.close()
