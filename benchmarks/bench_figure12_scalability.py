"""Figure 12 / Exp-6: scalability on power-law graphs.

The paper varies |V| from 1M to 10M with |E| = 5 |V| and shows both
TSD-index construction time and TSD query time scaling smoothly (near
linearly) with graph size.  Scaled down 1000x for pure Python, the
curve shape — sub-quadratic growth, no cliffs — is the reproduced
claim.
"""

import pytest

from repro.bench.reporting import format_series
from repro.core.tsd import TSDIndex
from repro.datasets.synthetic import power_law_graph

SIZES = [1_000, 2_000, 4_000, 8_000]


@pytest.mark.benchmark(group="figure12")
def test_figure12_scalability(benchmark, report):
    build_times = []
    query_times = []
    for n in SIZES:
        graph = power_law_graph(n, edges_per_vertex=5, seed=42)
        index = TSDIndex.build(graph)
        build_times.append(round(index.build_profile.total_seconds, 3))
        result = index.top_r(3, 100, collect_contexts=False)
        query_times.append(round(result.elapsed_seconds, 4))

    report.add("Figure 12 - scalability", format_series(
        "Figure 12: TSD build and query seconds vs |V| (|E| = 5|V|)",
        "|V|", {"build(s)": build_times, "query(s)": query_times}, SIZES))

    # Shape: build time grows, but sub-quadratically in n (the paper's
    # curves are near linear; allow generous constant-factor noise).
    for i in range(1, len(SIZES)):
        n_ratio = SIZES[i] / SIZES[i - 1]
        t_ratio = build_times[i] / max(build_times[i - 1], 1e-9)
        assert t_ratio <= n_ratio ** 2, (SIZES[i], t_ratio)

    benchmark(lambda: TSDIndex.build(power_law_graph(1_000, 5, seed=42)))
