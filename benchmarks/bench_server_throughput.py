"""Server throughput: queries/sec direct vs routed vs over HTTP.

The router's promise is that multi-graph serving costs (almost)
nothing on the read path: routing is one dict lookup in front of the
same lock-free snapshot read a single-graph
:class:`~repro.service.DiversityService` does.  This benchmark measures
that, and records what the stdlib HTTP front adds on top:

* **direct**: ``DiversityService.top_r`` in-process, one graph;
* **routed**: ``DiversityRouter.top_r`` with several graphs registered,
  traffic round-robining across them;
* **http**: ``ServerClient.top_r`` against a live
  :class:`ThreadingHTTPServer` on loopback.

All three serve cache-hot thresholds (the steady state of a hot
service), so the numbers isolate dispatch overhead, not scoring cost.
The routed path must stay within 2x of direct — routing is a dict
lookup, not a query plan.  The HTTP number is recorded for scale
(json + socket round trip dominates); it has no bar.
"""

import time

import pytest

from repro.bench.reporting import format_table
from repro.datasets.synthetic import powerlaw_cluster
from repro.server import DiversityRouter, ServerClient, serve
from repro.service import DiversityService

#: Graphs hosted by the routed/http paths; traffic round-robins.
FLEET = 4

#: Cache-hot query mix (thresholds pre-warmed before timing).
QUERIES = [(3, 10), (4, 5), (3, 1), (4, 10)]

#: Timed queries per path.
N = 400

#: Routed serving must stay within this factor of direct serving.
MAX_ROUTED_SLOWDOWN = 2.0

#: Timing runs per path; the minimum filters scheduler noise.
TRIALS = 3


def _graphs():
    return {f"g{i}": powerlaw_cluster(150, 4, 0.5, seed=31 + i)
            for i in range(FLEET)}


def _warm(serve_one):
    for k, r in QUERIES:
        serve_one(k, r)


def _time_queries(serve_one):
    best = None
    for _ in range(TRIALS):
        start = time.perf_counter()
        for i in range(N):
            k, r = QUERIES[i % len(QUERIES)]
            serve_one(k, r)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return N / best


@pytest.mark.benchmark(group="server-throughput")
def test_server_throughput(benchmark, report):
    graphs = _graphs()

    # -- direct: one service, no router in front -----------------------
    service = DiversityService.start(graphs["g0"])
    _warm(lambda k, r: service.top_r(k, r, collect_contexts=False))
    qps_direct = _time_queries(
        lambda k, r: service.top_r(k, r, collect_contexts=False))

    # -- routed: the same traffic through a multi-graph router ---------
    router = DiversityRouter()
    for name, graph in graphs.items():
        router.add_graph(name, graph)
    names = sorted(graphs)
    counter = {"i": 0}

    def routed(k, r):
        name = names[counter["i"] % len(names)]
        counter["i"] += 1
        return router.top_r(name, k, r, collect_contexts=False)

    _warm(lambda k, r: [router.top_r(name, k, r, collect_contexts=False)
                        for name in names])
    qps_routed = _time_queries(routed)

    # Routing must not change a single answer.
    for k, r in QUERIES:
        assert router.top_r("g0", k, r, collect_contexts=False).vertices \
            == service.top_r(k, r, collect_contexts=False).vertices, (k, r)

    # -- http: the same router behind the stdlib network front ---------
    server = serve(router, port=0)
    client = ServerClient(f"http://127.0.0.1:{server.server_port}")

    def over_http(k, r):
        name = names[counter["i"] % len(names)]
        counter["i"] += 1
        return client.top_r(name, k=k, r=r)

    try:
        qps_http = _time_queries(over_http)
        wire = client.top_r("g0", k=3, r=10)
        local = service.top_r(3, 10, collect_contexts=False)
        assert wire["vertices"] == local.vertices
        assert wire["scores"] == local.scores
    finally:
        server.shutdown()
        server.server_close()

    slowdown = qps_direct / qps_routed
    assert slowdown <= MAX_ROUTED_SLOWDOWN, \
        (f"multi-graph routing costs {slowdown:.2f}x over direct serving "
         f"(bar: {MAX_ROUTED_SLOWDOWN}x) — routing must stay a dict lookup")

    report.add("Server - routed and HTTP throughput", format_table(
        ["path", "graphs", "queries", "qps", "vs direct"],
        [
            ["direct (in-process)", 1, N, round(qps_direct), "1.00x"],
            ["routed (in-process)", FLEET, N, round(qps_routed),
             f"{qps_routed / qps_direct:.2f}x"],
            ["http (loopback)", FLEET, N, round(qps_http),
             f"{qps_http / qps_direct:.2f}x"],
        ],
        title=f"Cache-hot top-r throughput: direct service vs "
              f"{FLEET}-graph router vs stdlib HTTP front"))

    benchmark(lambda: routed(3, 10))
