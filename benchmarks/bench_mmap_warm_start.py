"""Mmap warm start: paged binary store vs JSON store vs cold build.

The tentpole claim of the binary index format: a restarted serving
process should pay an ``mmap`` + offset-dictionary open, not a JSON
parse that materialises every forest — and certainly not an ego-network
decomposition.  On the Figure-12 scalability family
(``power_law_graph``, |E| = 5|V|) this bench measures, each scenario in
its **own subprocess** so ``ru_maxrss`` is honest (it is monotonic
within a process):

* **cold**  — build the tsd + gct indexes and persist them (the
  process that seeds the store);
* **json**  — load the ``codec="json"`` store: full payload parse +
  ``from_payload`` materialisation;
* **mmap**  — load the same store converted to ``codec="bin"``: two
  mmap opens + label decode, nothing materialised.

The timed section is **time-to-ready**; every scenario then serves a
``(k, r)`` grid untimed and must return identical ranked lists (the
canonical contract does not bend for a storage format) — serving also
drags the lazy path through real query-time decoding before the
resident set is read.  Acceptance bars: the mmap warm start is
**≥10x** faster than the cold build at the largest size, and its
post-serving resident set does not exceed the JSON path's (which still
holds every materialised forest).

A second experiment pins the paging claim directly: open **N** binary
graph artifacts at once and answer a point query on each.  Lazily the
resident set is the mmaps plus a bounded LRU of decoded records;
eagerly (``read_payload`` + ``from_payload``) it is N fully
materialised indexes.  The lazy fleet must stay at or under the eager
fleet's RSS — that is what lets one process serve many graphs.

Results land in ``benchmarks/out/BENCH_mmap.json`` (``make bench-mmap``).
"""

import json
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest

from repro.bench.reporting import format_table
from repro.core.gct import GCTIndex
from repro.core.tsd import TSDIndex
from repro.datasets.synthetic import power_law_graph
from repro.service import IndexStore
from repro.storage import open_tsd_artifact

SIZES = [2_000, 8_000]

#: Repeated service traffic: threshold presets over answer sizes.
WORKLOAD = [[k, r] for k in (3, 4, 5) for r in (1, 25)]

#: Acceptance bar at the largest size: mmap warm start vs cold build.
MIN_SPEEDUP = 10.0

#: Warm-path timing runs; the minimum filters disk/GC noise.
TRIALS = 2

#: The many-graphs fleet: N binary artifacts open in one process.
FLEET_N = 6
FLEET_SIZE = 1_200

OUT_PATH = Path(__file__).parent / "out" / "BENCH_mmap.json"

_SRC = str(Path(__file__).parent.parent / "src")

#: The measured subprocess.  Scenario + params arrive on argv; one JSON
#: line comes back on stdout.  Timing starts *after* graph generation —
#: the graph is common to every scenario and not what is under test.
_SCRIPT = r"""
import json, resource, sys, time

scenario = sys.argv[1]
params = json.loads(sys.argv[2])


def vmrss_kb():
    # Currently-resident set (not the ru_maxrss high-water mark) --
    # what the process still *holds* once serving is underway.
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    return 0

from repro.datasets.synthetic import power_law_graph

graph = None
if "n" in params:
    graph = power_law_graph(params["n"], edges_per_vertex=5,
                            seed=params.get("seed", 42))

rank = None
start = time.perf_counter()
if scenario in ("cold", "warm"):
    from repro.service import IndexStore
    # Timed: time-to-ready — a restarted process up to "the indexes
    # can serve".  Cold pays build + persist; a warm start pays the
    # store load (full JSON parse + materialise vs mmap open +
    # labels).  The query grid runs untimed below, purely for the
    # cross-format rank-identity assertion (it also drags the lazy
    # path through real serving, so the RSS numbers include
    # query-time decoding).
    if scenario == "cold":
        # tsd + gct only: the two artifacts with a binary codec, so
        # the json-vs-mmap warm columns compare exactly the paged
        # format.
        from repro.core.gct import GCTIndex
        from repro.core.tsd import TSDIndex
        tsd = TSDIndex.build(graph, jobs=1)
        gct = GCTIndex.build(graph)
        IndexStore(params["store"]).put(graph, tsd=tsd, gct=gct)
    else:
        loaded = IndexStore(params["store"]).load(graph)
        tsd, gct = loaded.tsd, loaded.gct
        assert tsd is not None and gct is not None, "nothing warm-loaded"
    seconds = time.perf_counter() - start
    first = tsd.top_r(4, 1)
    results = [gct.top_r(k, r) for k, r in params["workload"]]
    rank = [list(first.vertices)] + [list(r.vertices) for r in results]
elif scenario == "fleet-lazy":
    from repro.storage import open_gct_artifact, open_tsd_artifact
    fleet = [(open_tsd_artifact(t, cache_records=64),
              open_gct_artifact(g, cache_records=64))
             for t, g in params["artifacts"]]
    rank = [[tsd.score(v, 4) for v in list(tsd.vertices)[:10]]
            for tsd, _ in fleet]
elif scenario == "fleet-eager":
    from repro.core.gct import GCTIndex
    from repro.core.tsd import TSDIndex
    from repro.storage import read_payload
    fleet = [(TSDIndex.from_payload(read_payload(t)),
              GCTIndex.from_payload(read_payload(g)))
             for t, g in params["artifacts"]]
    rank = [[tsd.score(v, 4) for v in list(tsd.vertices)[:10]]
            for tsd, _ in fleet]
else:
    raise SystemExit(f"unknown scenario {scenario!r}")
if scenario.startswith("fleet"):
    seconds = time.perf_counter() - start

print(json.dumps({
    "seconds": seconds,
    "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "rss_kb": vmrss_kb(),
    "rank": rank,
}))
"""


def _measure(scenario: str, params: dict) -> dict:
    """Run one scenario in a fresh interpreter, return its JSON report."""
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT, scenario, json.dumps(params)],
        capture_output=True, text=True, env={"PYTHONPATH": _SRC,
                                             "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, (scenario, proc.stderr[-2000:])
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _best_of(scenario: str, params: dict, trials: int = TRIALS) -> dict:
    best = None
    for _ in range(trials):
        run = _measure(scenario, params)
        if best is None or run["seconds"] < best["seconds"]:
            best = run
    return best


def _mb(maxrss_kb: int) -> float:
    return round(maxrss_kb / 1024.0, 1)


@pytest.mark.benchmark(group="mmap-warm-start")
def test_bench_mmap_warm_start(benchmark, report):
    rows = []
    sizes_out = []
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        for n in SIZES:
            json_root = tmp / f"json-{n}"
            bin_root = tmp / f"bin-{n}"
            cold = _measure("cold", {"n": n, "store": str(json_root),
                                     "workload": WORKLOAD}, )
            shutil.copytree(json_root, bin_root)
            converted = IndexStore(bin_root).convert("bin")
            assert converted == 2, converted  # tsd + gct pages
            warm_json = _best_of("warm", {"n": n, "store": str(json_root),
                                          "workload": WORKLOAD})
            warm_bin = _best_of("warm", {"n": n, "store": str(bin_root),
                                         "workload": WORKLOAD})

            # The canonical contract across storage formats: all three
            # processes returned identical ranked lists.
            assert cold["rank"] == warm_json["rank"] == warm_bin["rank"], n

            speed_json = cold["seconds"] / max(warm_json["seconds"], 1e-9)
            speed_bin = cold["seconds"] / max(warm_bin["seconds"], 1e-9)
            rows.append([n, f"{cold['seconds']:.2f}",
                         f"{warm_json['seconds']:.3f} ({speed_json:.0f}x)",
                         f"{warm_bin['seconds']:.3f} ({speed_bin:.0f}x)",
                         _mb(warm_json["rss_kb"]),
                         _mb(warm_bin["rss_kb"])])
            sizes_out.append({
                "n": n,
                "cold_seconds": round(cold["seconds"], 4),
                "warm_json_seconds": round(warm_json["seconds"], 4),
                "warm_mmap_seconds": round(warm_bin["seconds"], 4),
                "speedup_json_vs_cold": round(speed_json, 1),
                "speedup_mmap_vs_cold": round(speed_bin, 1),
                "cold_peak_rss_mb": _mb(cold["maxrss_kb"]),
                "warm_json_rss_mb": _mb(warm_json["rss_kb"]),
                "warm_mmap_rss_mb": _mb(warm_bin["rss_kb"]),
            })

        # Acceptance bars at the largest (most timing-stable) size.
        largest = sizes_out[-1]
        assert largest["speedup_mmap_vs_cold"] >= MIN_SPEEDUP, largest
        # Bounded RSS: after serving the grid, the JSON engine still
        # holds every materialised forest; the mmap engine holds the
        # maps plus a bounded LRU, so its resident set must not exceed
        # the JSON one's (5% slack for allocator noise on the shared
        # interpreter + graph baseline).
        assert (largest["warm_mmap_rss_mb"]
                <= largest["warm_json_rss_mb"] * 1.05), largest

        # N graphs open in one process: lazy fleet vs materialised fleet.
        artifacts = []
        for i in range(FLEET_N):
            graph = power_law_graph(FLEET_SIZE, edges_per_vertex=5,
                                    seed=42 + i)
            store = IndexStore(tmp / f"fleet-{i}", codec="bin")
            store.put(graph, tsd=TSDIndex.build(graph, jobs=1),
                      gct=GCTIndex.build(graph))
            root = tmp / f"fleet-{i}"
            artifacts.append([str(next(root.rglob("tsd.bin"))),
                              str(next(root.rglob("gct.bin")))])
        lazy = _measure("fleet-lazy", {"artifacts": artifacts})
        eager = _measure("fleet-eager", {"artifacts": artifacts})
        assert lazy["rank"] == eager["rank"]
        assert lazy["rss_kb"] <= eager["rss_kb"], (lazy, eager)
        fleet_out = {
            "graphs": FLEET_N, "n_each": FLEET_SIZE,
            "lazy_rss_mb": _mb(lazy["rss_kb"]),
            "eager_rss_mb": _mb(eager["rss_kb"]),
            "lazy_seconds": round(lazy["seconds"], 4),
            "eager_seconds": round(eager["seconds"], 4),
        }

        OUT_PATH.parent.mkdir(exist_ok=True)
        OUT_PATH.write_text(json.dumps({
            "bench": "mmap warm start (Figure 12 family, |E| = 5|V|)",
            "workload_queries": len(WORKLOAD),
            "min_speedup_bar": MIN_SPEEDUP,
            "sizes": sizes_out,
            "fleet": fleet_out,
        }, indent=2) + "\n", encoding="utf-8")

        report.add("Storage - mmap warm start vs JSON vs cold", format_table(
            ["|V|", "cold(s)", "warm json(s)", "warm mmap(s)",
             "json RSS(MB)", "mmap RSS(MB)"],
            rows,
            title=f"Binary store warm start: {len(WORKLOAD)}-query gct "
                  f"workload per process; fleet of {FLEET_N} graphs "
                  f"lazy {fleet_out['lazy_rss_mb']}MB vs eager "
                  f"{fleet_out['eager_rss_mb']}MB"))

        tsd_path = artifacts[0][0]
        benchmark(lambda: open_tsd_artifact(tsd_path).top_r(4, 1))
