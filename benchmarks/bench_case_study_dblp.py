"""Exp-10/11 + Table 5: the DBLP case study.

On the collaboration network each model crowns a different top-1
(paper: Truss-Div -> Gabor Fichtinger with 6 research-group contexts;
Comp-Div -> Ming Li with 8 sparse clusters; Core-Div -> Rui Li with 3
maximal 5-cores), and Table 5 shows the Truss-Div ego-network is the
densest and its center the most activatable.
"""

import pytest

from repro.bench.reporting import format_table
from repro.core.gct import GCTIndex
from repro.datasets.dblp import dblp_like_network, TRUSS_HUB, COMP_HUB, CORE_HUB
from repro.graph.egonet import ego_network
from repro.influence.contagion import center_activation_probability
from repro.models import CompDivModel, CoreDivModel, TrussDivModel

K, R = 5, 1
P_TABLE5 = 0.05


@pytest.fixture(scope="module")
def dblp():
    return dblp_like_network(seed=7)


@pytest.mark.benchmark(group="case-study")
def test_exp10_11_top1_per_model(benchmark, report, dblp):
    index = GCTIndex.build(dblp)
    truss = TrussDivModel(index=index).top_r(dblp, K, R)
    comp = CompDivModel().top_r(dblp, K, R)
    core = CoreDivModel().top_r(dblp, K, R)

    rows = [
        ["Truss-Div", repr(truss.vertices[0]), truss.scores[0]],
        ["Comp-Div", repr(comp.vertices[0]), comp.scores[0]],
        ["Core-Div", repr(core.vertices[0]), core.scores[0]],
    ]
    report.add("Exp-10/11 - case study winners", format_table(
        ["model", "top-1 author", "|SC(v)|"],
        rows, title=f"Exp-10/11: top-1 per model on DBLP analogue (k={K})"))

    # Paper outcome: three different winners with these context counts.
    assert truss.vertices == [TRUSS_HUB] and truss.scores == [6]
    assert comp.vertices == [COMP_HUB] and comp.scores == [8]
    assert core.vertices == [CORE_HUB] and core.scores == [3]

    # Exp-10's structural point: Comp-Div and Core-Div cannot decompose
    # the Truss-Div winner's ego-network into its six groups.
    assert CompDivModel().vertex_score(dblp, TRUSS_HUB, K) < 6
    assert CoreDivModel().vertex_score(dblp, TRUSS_HUB, K) < 6

    benchmark(lambda: TrussDivModel(index=index).top_r(dblp, K, R))


@pytest.mark.benchmark(group="case-study")
def test_table5_ego_quality(benchmark, report, dblp):
    winners = {
        "Comp-Div": COMP_HUB,
        "Core-Div": CORE_HUB,
        "Truss-Div": TRUSS_HUB,
    }
    contexts = {
        "Comp-Div": CompDivModel().vertex_score(dblp, COMP_HUB, K),
        "Core-Div": CoreDivModel().vertex_score(dblp, CORE_HUB, K),
        "Truss-Div": TrussDivModel().vertex_score(dblp, TRUSS_HUB, K),
    }
    rows = []
    density = {}
    activation = {}
    for model, author in winners.items():
        ego = ego_network(dblp, author)
        density[model] = ego.num_edges / ego.num_vertices
        activation[model] = center_activation_probability(
            dblp, author, P_TABLE5, num_seeds=10, runs=600, seed=5)
        rows.append([model, author, ego.num_vertices, ego.num_edges,
                     round(density[model], 2), contexts[model],
                     round(activation[model], 3)])

    report.add("Table 5 - ego quality", format_table(
        ["model", "author", "|V|(ego)", "|E|(ego)", "density", "|SC|",
         "act.prob"],
        rows, title=f"Table 5: top-1 ego-network statistics (p={P_TABLE5})"))

    # Paper shape: the Truss-Div winner has the densest ego-network and
    # the highest activation probability.
    assert density["Truss-Div"] == max(density.values())
    assert activation["Truss-Div"] == max(activation.values())

    benchmark(lambda: center_activation_probability(
        dblp, TRUSS_HUB, P_TABLE5, num_seeds=10, runs=60, seed=5))
