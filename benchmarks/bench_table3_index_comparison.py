"""Table 3 / Exp-3: TSD vs GCT — index size, build time, query time.

Paper shape: GCT-index is smaller than TSD-index (supernode compression
discards intra-context edges), builds faster (one-shot extraction +
bitmap peeling), and answers queries faster (Lemma 3 vs forest BFS).
"""

import time

import pytest

from repro.bench.reporting import format_table
from repro.core.tsd import TSDIndex
from repro.core.gct import GCTIndex
from repro.datasets.registry import dataset_names, load_dataset

K, R = 3, 100


def _query_seconds(index) -> float:
    start = time.perf_counter()
    index.top_r(K, R, collect_contexts=False)
    return time.perf_counter() - start


@pytest.mark.benchmark(group="table3")
def test_table3_index_comparison(benchmark, report):
    rows = []
    wins = {"size": 0, "query": 0}
    totals = {"tsd_build": 0.0, "gct_build": 0.0}
    for name in dataset_names():
        graph = load_dataset(name)
        tsd = TSDIndex.build(graph)
        gct = GCTIndex.build(graph)
        tsd_build = tsd.build_profile.total_seconds
        gct_build = gct.build_profile.total_seconds
        tsd_query = _query_seconds(tsd)
        gct_query = _query_seconds(gct)
        rows.append([name,
                     tsd.payload_slots(), gct.payload_slots(),
                     round(tsd_build, 3), round(gct_build, 3),
                     round(tsd_query, 4), round(gct_query, 4)])
        wins["size"] += gct.payload_slots() <= tsd.payload_slots()
        wins["query"] += gct_query <= tsd_query * 1.5  # noise guard
        totals["tsd_build"] += tsd_build
        totals["gct_build"] += gct_build

        # Correctness: both indexes answer identically.
        a = tsd.top_r(K, 10, collect_contexts=False)
        b = gct.top_r(K, 10, collect_contexts=False)
        assert sorted(a.scores, reverse=True) == sorted(b.scores, reverse=True)

    report.add("Table 3 - index comparison", format_table(
        ["dataset", "TSD slots", "GCT slots", "TSD build(s)", "GCT build(s)",
         "TSD query(s)", "GCT query(s)"],
        rows, title=f"Table 3: TSD vs GCT indexing (k={K}, r={R})"))

    # Paper shape: GCT wins on (nearly) every dataset on size and query;
    # build time is the noisy axis on sub-second builds, so it is
    # asserted in aggregate with a tolerance instead of per dataset.
    assert wins["size"] >= 7, wins
    assert wins["query"] >= 6, wins
    assert totals["gct_build"] <= totals["tsd_build"] * 1.15, totals

    benchmark(lambda: GCTIndex.build(load_dataset("wiki-vote")))
