"""Table 4 / Exp-3: ego-network extraction and decomposition phases.

Paper shape: GCT's one-shot global triangle listing extracts all
ego-networks substantially faster than per-vertex extraction (each
triangle touched 3x instead of 6x), and bitmap peeling beats hash
peeling on the dense local ego-networks.
"""

import pytest

from repro.bench.reporting import format_table
from repro.core.tsd import TSDIndex
from repro.core.gct import GCTIndex
from repro.datasets.registry import dataset_names, load_dataset


@pytest.mark.benchmark(group="table4")
def test_table4_ego_phase_times(benchmark, report):
    rows = []
    extraction_wins = 0
    decomposition_wins = 0
    for name in dataset_names():
        graph = load_dataset(name)
        tsd = TSDIndex.build(graph).build_profile
        gct = GCTIndex.build(graph).build_profile
        rows.append([name,
                     round(tsd.extraction_seconds, 3),
                     round(gct.extraction_seconds, 3),
                     round(tsd.decomposition_seconds, 3),
                     round(gct.decomposition_seconds, 3)])
        extraction_wins += gct.extraction_seconds <= tsd.extraction_seconds
        decomposition_wins += (gct.decomposition_seconds
                               <= tsd.decomposition_seconds * 1.1)

    report.add("Table 4 - ego phase times", format_table(
        ["dataset", "TSD extract(s)", "GCT extract(s)",
         "TSD decompose(s)", "GCT decompose(s)"],
        rows, title="Table 4: ego-network extraction & truss decomposition"))

    # Paper shape: GCT accelerates both phases on almost every dataset.
    assert extraction_wins >= 7, extraction_wins
    assert decomposition_wins >= 6, decomposition_wins

    from repro.graph.egonet import iter_ego_edge_lists
    graph = load_dataset("wiki-vote")
    benchmark(lambda: sum(1 for _ in iter_ego_edge_lists(graph)))
