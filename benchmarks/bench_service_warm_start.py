"""Service warm start: stored artifacts vs. cold build-and-serve.

The :class:`repro.service.store.IndexStore` exists for one reason: a
restarted serving process should pay JSON-load cost, not ego-network
decomposition cost.  This benchmark measures the claim end to end on
registry datasets:

* **cold (first boot)**: a fresh :class:`QueryEngine` builds every
  artifact, persists them to the store, and serves a repeated-traffic
  ``(k, r)`` grid — the full cost of the process that seeds the store;
* **warm (restart)**: an engine started with ``warm_start=`` on that
  store serves the identical grid.

Expected shape: the first boot is dominated by per-vertex ego
extraction + truss decomposition (TSD build, GCT, hybrid rankings);
the restart replaces all of it with a JSON parse, so the warm path
must be **≥5x faster** (the acceptance bar).  Both runs must be
rank-identical — warm answers come from the same artifacts, just via
disk.
"""

import tempfile
import time

import pytest

from repro.bench.reporting import format_table, speedup
from repro.datasets.registry import load_dataset
from repro.engine import QueryEngine
from repro.service import IndexStore

DATASETS = ("wiki-vote", "email-enron")

#: Repeated service traffic: threshold presets swept over answer sizes.
WORKLOAD = [(k, r) for _ in range(2) for k in (3, 4, 5) for r in (1, 10, 50)]

#: Acceptance bar: warm start must beat cold build-and-serve by this.
MIN_SPEEDUP = 5.0

#: Timing runs per path; the minimum filters GC/disk noise out of the
#: speedup ratio (both paths get the same treatment).
TRIALS = 3


def _serve(engine):
    return engine.top_r_many(WORKLOAD, method="gct", collect_contexts=False)


def _run_first_boot(graph, store):
    """Build every artifact, seed the store, serve — a cold first boot."""
    start = time.perf_counter()
    engine = QueryEngine(graph)
    engine.persist(store)
    results = _serve(engine)
    return time.perf_counter() - start, results, engine


def _run_warm_restart(graph, store):
    """Load the stored artifacts and serve — a warm restart."""
    start = time.perf_counter()
    engine = QueryEngine(graph, warm_start=store)
    results = _serve(engine)
    return time.perf_counter() - start, results, engine


def _best_of(runner, *args):
    best = None
    for _ in range(TRIALS):
        elapsed, results, engine = runner(*args)
        if best is None or elapsed < best[0]:
            best = (elapsed, results, engine)
    return best


@pytest.mark.benchmark(group="service-warm-start")
def test_warm_start_vs_cold_build(benchmark, report):
    rows = []
    for name in DATASETS:
        graph = load_dataset(name)
        with tempfile.TemporaryDirectory() as root:
            store = IndexStore(root)
            t_cold, cold_results, _ = _best_of(_run_first_boot, graph, store)
            t_warm, warm_results, warm_engine = _best_of(
                _run_warm_restart, graph, store)

        # Rank-identity: disk must not change a single answer.
        for cold, warm in zip(cold_results, warm_results):
            expected = [(e.vertex, e.score) for e in cold.entries]
            assert [(e.vertex, e.score) for e in warm.entries] == expected

        # Zero builds on the warm path — the whole point of the store.
        stats = warm_engine.stats()
        assert stats.index_build_seconds == {}, stats.index_build_seconds
        assert stats.warm_loaded, "warm start silently fell back to cold"

        ratio = speedup(t_cold, t_warm) or 0.0
        assert ratio >= MIN_SPEEDUP, \
            f"{name}: warm start only {ratio:.1f}x faster (need ≥{MIN_SPEEDUP}x)"
        rows.append([name, graph.num_edges, len(WORKLOAD),
                     t_cold, t_warm, round(ratio, 1)])

    report.add("Service - warm start vs cold build", format_table(
        ["dataset", "edges", "queries", "t_cold(s)", "t_warm(s)", "speedup"],
        rows,
        title=f"IndexStore warm start: {len(WORKLOAD)}-query workload, "
              "cold first boot (build+persist+serve) vs warm restart"))

    graph = load_dataset("wiki-vote")
    with tempfile.TemporaryDirectory() as root:
        store = IndexStore(root)
        QueryEngine(graph).persist(store)
        benchmark(lambda: _run_warm_restart(graph, store))
