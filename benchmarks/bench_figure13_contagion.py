"""Figure 13 / Exp-7: correlation of contagion and structural diversity.

The paper partitions vertices into four truss-diversity score intervals
and shows the activation rate (under IC from 50 influence-maximised
seeds) increasing with the interval: structural diversity predicts
social contagion.

Substitutions: IC probability raised from 0.01 to 0.05 and Monte-Carlo
runs reduced from 10,000 to 400 to fit the scaled graphs (documented in
EXPERIMENTS.md); the monotone trend is the reproduced claim.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import gct_index
from repro.datasets.registry import SWEEP_DATASETS, load_dataset
from repro.influence.contagion import activation_rate_by_score_group
from repro.influence.seeds import ris_seeds

K = 4
P = 0.05
RUNS = 400
NUM_SEEDS = 50


@pytest.mark.benchmark(group="figure13")
@pytest.mark.parametrize("dataset", SWEEP_DATASETS)
def test_figure13_contagion_correlation(benchmark, report, dataset):
    graph = load_dataset(dataset)
    index = gct_index(dataset)
    scores = {v: index.score(v, K) for v in graph.vertices()}
    seeds = ris_seeds(graph, NUM_SEEDS, P, num_samples=600, seed=13)
    groups = activation_rate_by_score_group(
        graph, scores, seeds, p=P, num_groups=4, runs=RUNS, seed=13)

    rows = [[g.label, g.num_vertices, round(g.activated_rate, 4)]
            for g in groups]
    report.add(f"Figure 13 - contagion correlation ({dataset})", format_table(
        ["score interval", "vertices", "activated rate"],
        rows,
        title=f"Figure 13: activation rate per score group on {dataset} "
              f"(k={K}, p={P}, {RUNS} MC runs)"))

    # Paper shape: the high-score group is activated more often than
    # the low-score group.  Tied score distributions can merge groups,
    # so the group count is 2-4.
    assert 2 <= len(groups) <= 4, dataset
    assert groups[-1].activated_rate >= groups[0].activated_rate, dataset

    benchmark(lambda: activation_rate_by_score_group(
        graph, scores, seeds, p=P, num_groups=4, runs=40, seed=13))
