"""Figure 15 / Exp-9: rounds needed to activate the top-100 selections.

The paper measures how many IC rounds it takes to activate x of each
model's top-100 vertices.  Shape: Truss-Div's selections activate
faster (lower latency curve / more of them reached) than Core-Div's
and Comp-Div's.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import gct_index
from repro.datasets.registry import SWEEP_DATASETS, load_dataset
from repro.influence.contagion import latency_curve
from repro.influence.seeds import ris_seeds
from repro.models import CompDivModel, CoreDivModel, TrussDivModel

K = 4
P = 0.05
RUNS = 300
TOP = 100


@pytest.mark.benchmark(group="figure15")
@pytest.mark.parametrize("dataset", SWEEP_DATASETS)
def test_figure15_activation_latency(benchmark, report, dataset):
    graph = load_dataset(dataset)
    seeds = ris_seeds(graph, 50, P, num_samples=600, seed=15)
    models = {
        "Truss-Div": TrussDivModel(index=gct_index(dataset)),
        "Core-Div": CoreDivModel(),
        "Comp-Div": CompDivModel(),
    }
    curves = {}
    for name, model in models.items():
        targets = model.select(graph, K, TOP)
        curves[name] = latency_curve(graph, targets, seeds, P,
                                     runs=RUNS, seed=15)

    rows = []
    for name, curve in curves.items():
        reached = curve[-1][0] if curve else 0
        final_round = round(curve[-1][1], 2) if curve else None
        mean_round = (round(sum(r for _, r in curve) / len(curve), 2)
                      if curve else None)
        rows.append([name, reached, final_round, mean_round])
    report.add(f"Figure 15 - activation latency ({dataset})", format_table(
        ["model", "targets reached", "rounds at last", "mean rounds"],
        rows,
        title=f"Figure 15: latency to activate top-{TOP} on {dataset} "
              f"(k={K}, p={P})"))

    # Paper shape: Truss-Div reaches at least as many of its top-100 as
    # the other models do theirs.
    truss_reached = curves["Truss-Div"][-1][0] if curves["Truss-Div"] else 0
    for name in ("Core-Div", "Comp-Div"):
        other = curves[name][-1][0] if curves[name] else 0
        assert truss_reached >= other * 0.8, (dataset, name)

    benchmark(lambda: latency_curve(
        graph, list(graph.vertices())[:TOP], seeds, P, runs=40, seed=15))
