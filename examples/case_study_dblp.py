"""The DBLP case study (paper Section 7.3, Exp-10/11/12).

On a collaboration network, the three structural diversity models crown
three different "most diverse" researchers:

* Truss-Div finds the hub with six dense research groups,
* Comp-Div falls for sparse, merely-large collaborator clusters,
* Core-Div finds k-cores but cannot split bridged groups.

Run:  python examples/case_study_dblp.py
"""

from repro import CompDivModel, CoreDivModel, GCTIndex, TrussDivModel, ego_network
from repro.datasets import dblp_like_network
from repro.influence import center_activation_probability

K = 5


def describe(graph, model, result) -> None:
    vertex = result.vertices[0]
    ego = ego_network(graph, vertex)
    density = ego.num_edges / ego.num_vertices
    prob = center_activation_probability(graph, vertex, p=0.05,
                                         num_seeds=10, runs=500, seed=3)
    print(f"\n[{result.method}] top-1: {vertex!r}")
    print(f"  social contexts |SC(v)|: {result.scores[0]}")
    print(f"  ego-network: {ego.num_vertices} vertices, "
          f"{ego.num_edges} edges (density {density:.2f})")
    print(f"  center activation probability: {prob:.3f}")
    for context in sorted(result.entries[0].contexts, key=len, reverse=True)[:6]:
        members = sorted(map(str, context))
        preview = ", ".join(members[:4]) + (", ..." if len(members) > 4 else "")
        print(f"    context ({len(members)} authors): {preview}")


def main() -> None:
    graph = dblp_like_network(seed=7)
    print(f"DBLP-like collaboration network: {graph.num_vertices} authors, "
          f"{graph.num_edges} strong co-authorships")

    index = GCTIndex.build(graph)
    models = [
        TrussDivModel(index=index),
        CompDivModel(),
        CoreDivModel(),
    ]
    for model in models:
        result = model.top_r(graph, K, 1, collect_contexts=True)
        describe(graph, model, result)

    print("\nThe Truss-Div winner's groups survive as separate 5-trusses, "
          "while Comp-Div and Core-Div see them merged through weak "
          "bridges — the decomposability gap the paper's Figure 16 shows.")


if __name__ == "__main__":
    main()
