"""Query engine walkthrough: one facade, planner-chosen methods.

The five search methods (baseline, bound, TSD, GCT, hybrid) answer the
same top-r query under the same canonical ranking contract, so a
service only needs one entry point.  This example drives the
:class:`repro.engine.QueryEngine` through the workloads its planner is
built for:

1. a one-shot query (planner picks an online scan — no index build),
2. repeated traffic (planner builds the GCT index once and amortises),
3. a batch with repeated thresholds (score-map cache shared across
   items),
4. explicit method overrides and point lookups.

Run:  python examples/query_engine.py
"""

from repro.datasets.synthetic import powerlaw_cluster
from repro.engine import EngineConfig, QueryEngine


def main() -> None:
    graph = powerlaw_cluster(400, 6, 0.6, seed=7)
    print(f"Graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    engine = QueryEngine(graph, EngineConfig(small_graph_edges=5_000,
                                             index_reuse_threshold=2))

    # --- 1. one-shot query: the planner avoids building anything -----
    result = engine.top_r(4, 5)
    print(f"\nOne-shot query:   {result.summary()}")
    print(f"  planner said:   {engine.stats().decisions[-1]}")

    # --- 2. repeated traffic: the second query crosses the reuse
    #        threshold, so the planner builds the index ---------------
    result = engine.top_r(4, 5)
    print(f"\nRepeat query:     {result.summary()}")
    print(f"  planner said:   {engine.stats().decisions[-1]}")

    # --- 3. batch: one planner decision, shared score-map cache ------
    workload = [(3, 5), (4, 10), (3, 20), (5, 5), (4, 3)]
    results = engine.top_r_many(workload)
    print("\nBatch of 5:")
    for res in results:
        print(f"  {res.summary()}")

    # --- 4. explicit overrides and point lookups ---------------------
    forced = engine.top_r(4, 5, method="baseline")
    print(f"\nForced baseline:  {forced.summary()}")
    top = results[1].vertices[0]
    print(f"score({top!r}, k=4) = {engine.score(top, 4)}")

    # --- the ledger the service operator reads -----------------------
    print("\nEngine statistics:")
    print(engine.stats().summary())


if __name__ == "__main__":
    main()
