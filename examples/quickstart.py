"""Quickstart: truss-based structural diversity search in 40 lines.

Runs the paper's running example (Figure 1): the ego-network of vertex
``v`` decomposes into three maximal connected 4-trusses, so ``v`` has
the highest truss-based structural diversity, score 3.

Run:  python examples/quickstart.py
"""

from repro import (
    GCTIndex,
    TSDIndex,
    bound_search,
    online_search,
    social_contexts,
    structural_diversity,
)
from repro.datasets import figure1_graph


def main() -> None:
    graph = figure1_graph()
    print(f"Graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # --- one vertex, straight from the definition (Algorithm 2) -----
    k = 4
    score = structural_diversity(graph, "v", k)
    print(f"\nscore('v') at k={k}: {score}")
    for context in social_contexts(graph, "v", k):
        print(f"  social context: {sorted(context)}")

    # --- top-r search, four ways -------------------------------------
    r = 1
    print(f"\nTop-{r} search (k={k}):")
    print(" ", online_search(graph, k, r).summary())
    print(" ", bound_search(graph, k, r).summary())

    tsd = TSDIndex.build(graph)
    print(" ", tsd.top_r(k, r).summary())

    gct = GCTIndex.build(graph)
    print(" ", gct.top_r(k, r).summary())

    # --- the indexes answer any k without rebuilding -----------------
    print("\nscore('v') for every k (from the TSD-index):")
    for kk, s in sorted(tsd.score_profile("v").items()):
        print(f"  k={kk}: {s}")


if __name__ == "__main__":
    main()
