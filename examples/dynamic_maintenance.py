"""Dynamic graphs: keeping the TSD-index fresh under edge updates.

The paper's Section 5.3 notes that TSD-index updates are possible with
local recomputation; this example exercises that extension.  A social
group forms edge by edge around a user, and the maintained index tracks
the user's structural diversity after every change — plus index
persistence to disk.

Run:  python examples/dynamic_maintenance.py
"""

import tempfile
from itertools import combinations
from pathlib import Path

from repro import TSDIndex
from repro.core.dynamic import DynamicTSDIndex
from repro.datasets import planted_context_graph


def main() -> None:
    # Start with two established friend groups around "ego".
    graph = planted_context_graph(num_contexts=2, context_size=5,
                                  num_bridges=0, extra_neighbors=0, seed=1)
    dyn = DynamicTSDIndex(graph)
    print(f"initial score(ego) at k=4: {dyn.score('ego', 4)}")

    # A third group of friends joins one member at a time.
    newcomers = [f"new_{i}" for i in range(5)]
    for person in newcomers:
        dyn.insert_edge("ego", person)
    print(f"after meeting 5 people (no ties among them): "
          f"{dyn.score('ego', 4)}")

    for a, b in combinations(newcomers, 2):
        dyn.insert_edge(a, b)
    print(f"after they all befriend each other: {dyn.score('ego', 4)}")
    print(f"ego-forests rebuilt so far: {dyn.rebuilt_vertices} "
          f"(local repairs, not full rebuilds)")

    # A bridge forms between two groups: diversity at k=2 collapses.
    print(f"\nscore(ego) at k=2 before bridging: {dyn.score('ego', 2)}")
    dyn.insert_edge("c0_0", "c1_0")
    print(f"after one bridge between groups:     {dyn.score('ego', 2)}")
    dyn.delete_edge("c0_0", "c1_0")
    print(f"after the bridge dissolves:          {dyn.score('ego', 2)}")

    # The maintained index matches a from-scratch build, always.
    fresh = TSDIndex.build(dyn.graph)
    assert all(dyn.score(v, 4) == fresh.score(v, 4) for v in dyn.graph.vertices())
    print("\nmaintained index == from-scratch rebuild: verified")

    # Persist and reload.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "tsd.json"
        dyn.index.save(path)
        loaded = TSDIndex.load(path)
        print(f"round-tripped index from {path.name}: "
              f"score(ego)={loaded.score('ego', 4)}")


if __name__ == "__main__":
    main()
