"""Cluster walkthrough: shard, proxy, kill a worker, watch it heal.

The :class:`repro.cluster.ShardedCluster` spreads named graphs across
worker *processes* behind a consistent-hash router tier — the scale-out
shape of the paper's serve-many-queries regime.  This script is the
`make smoke-cluster` end-to-end check (start a 2-worker cluster, query,
kill a worker, verify recovery, stop), so it *asserts* its claims:

1. start: two workers spawned, three graphs registered across them;
2. query: frontend answers byte-identical to a single-process router;
3. kill: SIGKILL one worker — its graphs answer 503 + ``Retry-After``,
   the *other* worker's graphs never miss a beat;
4. heal: the supervisor respawns the worker (warm from its own store
   root) and replays its registrations — answers come back identical;
5. fan-out: ``/stats`` and ``/compact`` merge the whole fleet;
6. stop: clean shutdown.

Run:  python examples/cluster_service.py
"""

import json
import time

from repro.cluster import ShardedCluster
from repro.datasets.synthetic import powerlaw_cluster
from repro.errors import ServerError
from repro.server import DiversityRouter, ServerClient

WORKLOAD = [(3, 5), (4, 10), (3, 20), (5, 5)]

GRAPHS = {
    "social": powerlaw_cluster(200, 5, 0.6, seed=11),
    "citation": powerlaw_cluster(150, 4, 0.4, seed=23),
    "follows": powerlaw_cluster(120, 3, 0.5, seed=37),
}
#: Pin placement so the kill below provably spares another worker.
PINS = {"social": 0, "citation": 1, "follows": 1}


def wire_ranked(payload):
    return list(zip(payload["vertices"], payload["scores"]))


def main() -> None:
    # -- 1. start: two worker processes behind one frontend ------------
    cluster = ShardedCluster(workers=2, pins=PINS,
                             restart_interval=0.2).start(port=0)
    try:
        for name, graph in GRAPHS.items():
            answer = cluster.add_graph(name, graph=graph)
            print(f"graph {name!r}: |V|={answer['vertices']} on "
                  f"worker {cluster.owner(name)}")
        client = ServerClient(cluster.url)
        health = client.healthz()
        assert health["status"] == "ok" and health["workers_alive"] == 2
        print(f"serving {health['graphs']} graphs on {cluster.url} "
              f"({health['workers']} workers)")

        # -- 2. query: the shard tier changes nothing about answers ----
        router = DiversityRouter()
        for name, graph in GRAPHS.items():
            router.add_graph(name, graph)
        for name in GRAPHS:
            for k, r in WORKLOAD:
                wire = client.top_r(name, k=k, r=r)
                local = router.top_r(name, k, r, collect_contexts=False)
                assert json.dumps(wire_ranked(wire)) == json.dumps(
                    list(zip(local.vertices, local.scores))), (name, k, r)
        print(f"{len(GRAPHS) * len(WORKLOAD)} routed answers "
              "byte-identical to a single-process router")

        # -- 3. kill: one worker down, the other worker unaffected -----
        pid = cluster.kill_worker(0)
        try:
            client.top_r("social", k=3, r=5)
            raise AssertionError("a dead worker's graph must 503")
        except ServerError as exc:
            assert exc.status in (0, 503), exc
            print(f"killed worker 0 (pid {pid}): 'social' -> "
                  f"HTTP {exc.status or 'conn refused'}")
        survivor = client.top_r("citation", k=3, r=5)
        assert survivor["vertices"] == \
            router.top_r("citation", 3, 5).vertices
        print("worker 1's graphs kept serving through the outage")

        # -- 4. heal: supervised respawn + registration replay ---------
        deadline = time.time() + 30
        while time.time() < deadline:
            try:
                healed = client.top_r("social", k=3, r=5)
                break
            except ServerError:
                time.sleep(0.05)
        else:
            raise AssertionError("supervisor never revived worker 0")
        assert healed["vertices"] == router.top_r("social", 3, 5).vertices
        assert client.graph_stats("social")["warm_started"]
        print("supervisor respawned worker 0; answers identical, "
              "warm from its own store root")

        # -- 5. fan-out: fleet-wide stats and compaction ---------------
        stats = client.stats()
        assert set(GRAPHS) <= set(stats["graphs"])
        report = client.compact()
        assert report["workers_compacted"] == 2
        print(f"fleet stats: {stats['queries_total']} queries across "
              f"{len(stats['workers'])} workers; compaction kept "
              f"{report['kept_versions']} version(s)")
        client.close()
    finally:
        # -- 6. stop ---------------------------------------------------
        cluster.stop()
    print("cluster shut down cleanly")


if __name__ == "__main__":
    main()
