"""Service-layer walkthrough: store, warm start, live updates.

The :class:`repro.service.DiversityService` is what a long-running
process runs: answers come from an immutable snapshot (safe under
concurrent traffic), index artifacts persist in a versioned on-disk
:class:`repro.service.IndexStore` (restarts skip every build), and edge
updates repair only the affected vertices while dropping only the cache
thresholds whose scores actually changed.

The script doubles as the `make smoke-service` end-to-end check, so it
*asserts* its claims instead of just printing them:

1. first boot: cold build, artifacts persisted;
2. restart: warm start from the store — zero index builds;
3. live updates: an insert/delete batch, fine-grained invalidation;
4. correctness: every answer is rank-identical to a fresh engine.

Run:  python examples/diversity_service.py
"""

import tempfile

from repro.core.online import online_search
from repro.datasets.synthetic import powerlaw_cluster
from repro.engine import QueryEngine
from repro.service import DiversityService, IndexStore, delete, insert

WORKLOAD = [(3, 5), (4, 10), (3, 20), (5, 5), (4, 3)]


def ranked(result):
    return [(entry.vertex, entry.score) for entry in result.entries]


def main() -> None:
    graph = powerlaw_cluster(300, 5, 0.6, seed=11)
    print(f"Graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    store_dir = tempfile.mkdtemp(prefix="repro-store-")
    store = IndexStore(store_dir)

    # --- 1. first boot: cold build, artifacts persisted --------------
    first = DiversityService.start(graph, store=store)
    assert not first.warm_started
    print(f"\nFirst boot (cold): stored snapshot "
          f"v{first.snapshot.version} in {store_dir}")

    # --- 2. restart: warm from the store, zero builds ----------------
    service = DiversityService.start(graph, store=store)
    assert service.warm_started
    results = service.top_r_many(WORKLOAD)
    print("\nWarm restart serving the workload:")
    for result in results:
        print(f"  {result.summary()}")
    for (k, r), result in zip(WORKLOAD, results):
        assert ranked(result) == ranked(online_search(graph, k, r)), (k, r)

    # A warm *engine* records zero index builds for the same artifacts.
    engine = QueryEngine(graph, warm_start=store)
    engine.top_r_many(WORKLOAD, method="gct")
    assert engine.stats().index_build_seconds == {}
    print(f"\nWarm engine build ledger: "
          f"{engine.stats().index_build_seconds or 'no builds'}")

    # --- 3. live updates: repair + fine-grained invalidation ---------
    u, v = next(iter(graph.edges()))
    batch = [delete(u, v), insert(0, 299)] if not graph.has_edge(0, 299) \
        else [delete(u, v)]
    report = service.apply_updates(batch)
    print(f"\nUpdate batch: {report.summary()}")
    assert report.rebuilt_forests < graph.num_vertices, \
        "repair must touch only affected vertices, not the whole graph"

    # --- 4. post-update answers match a fresh engine -----------------
    mutated = service.snapshot.graph
    fresh = QueryEngine(mutated)
    for k, r in WORKLOAD:
        assert ranked(service.top_r(k, r)) == \
            ranked(fresh.top_r(k, r, method="gct")), (k, r)
    print("\nPost-update answers are rank-identical to a fresh engine.")

    # The store now holds the patched artifacts as the next version —
    # a process serving the *updated* graph warm-starts too.
    revived = DiversityService.warm(mutated, store)
    assert ranked(revived.top_r(4, 5)) == ranked(service.top_r(4, 5))
    print(f"Patched artifacts re-versioned: snapshot is now "
          f"v{service.snapshot.version}")

    print("\nService report:")
    print(service.stats_summary())


if __name__ == "__main__":
    main()
