"""k-truss community search with TCP-index and Equi-Truss (Section 8.2).

The paper contrasts its TSD-index with the community-search indexes it
builds on conceptually.  This example runs both on the paper's
Figure 18 graph and on a larger network, showing:

* TCP weights (global trussness) vs TSD weights (ego trussness) for the
  same vertex — same forests, different meaning;
* index-based community search agreeing with the brute-force
  triangle-connectivity definition.

Run:  python examples/truss_communities.py
"""

from repro import TSDIndex
from repro.community import EquiTrussIndex, TCPIndex, truss_communities
from repro.datasets import figure18_graph, load_dataset


def figure18_comparison() -> None:
    graph = figure18_graph()
    tcp = TCPIndex.build(graph)
    tsd = TSDIndex.build(graph)
    print("Figure 18 graph: the triangle q1-q2-q3, each edge thickened "
          "into a K4 by private vertices\n")
    print("index forests of q1 (edge: weight):")
    tcp_w = {frozenset((u, w)): weight for u, w, weight in tcp.forest("q1")}
    tsd_w = {frozenset((u, w)): weight for u, w, weight in tsd.forest("q1")}
    for pair in sorted(tcp_w | tsd_w, key=lambda p: sorted(map(str, p))):
        u, w = sorted(pair)
        print(f"  ({u},{w}):  TCP={tcp_w.get(pair, '-')}  "
              f"TSD={tsd_w.get(pair, '-')}")
    print("\nTCP sees global 4-trusses everywhere; TSD sees that inside "
          "G_N(q1) the edge (q2,q3) closes no triangle (weight 2).")


def community_search() -> None:
    graph = load_dataset("wiki-vote")
    query = next(iter(graph.vertices()))
    k = 5
    tcp = TCPIndex.build(graph)
    equi = EquiTrussIndex.build(graph)
    reference = truss_communities(graph, k, query=query)
    via_tcp = tcp.communities(query, k)
    via_equi = equi.communities(query, k)
    print(f"\nwiki-vote analogue: {k}-truss communities containing "
          f"vertex {query!r}:")
    for c in sorted(reference, key=len, reverse=True):
        print(f"  {len(c.vertices)} vertices, {len(c.edges)} edges")
    assert ({c.vertices for c in via_tcp}
            == {c.vertices for c in via_equi}
            == {c.vertices for c in reference})
    print(f"TCP-index, Equi-Truss and brute force agree "
          f"({len(reference)} communities).")
    print(f"Equi-Truss summary: {equi.num_supernodes} supernodes, "
          f"{equi.num_superedges} superedges for "
          f"{graph.num_edges} edges")


def main() -> None:
    figure18_comparison()
    community_search()


if __name__ == "__main__":
    main()
