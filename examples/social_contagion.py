"""Social contagion analysis (the paper's Exp-7/Exp-8 workflow).

Demonstrates the motivating application: truss-based structural
diversity predicts social contagion.  On a Gowalla-like network we

1. build a GCT-index and score every vertex,
2. pick 50 influence-maximised seeds (RIS sampling),
3. simulate independent cascades,
4. show that high-diversity vertices are activated more often, and
   that Truss-Div's top-r picks get activated more than random picks.

Run:  python examples/social_contagion.py
"""

from repro import GCTIndex, RandomModel, TrussDivModel
from repro.datasets import load_dataset
from repro.influence import (
    activated_among_targets,
    activation_rate_by_score_group,
    ris_seeds,
)

DATASET = "gowalla"
K = 4
P = 0.05          # IC edge probability (paper: 0.01 on full-size graphs)
RUNS = 300        # Monte-Carlo runs  (paper: 10,000)


def main() -> None:
    graph = load_dataset(DATASET)
    print(f"{DATASET}: {graph.num_vertices} vertices, {graph.num_edges} edges")

    index = GCTIndex.build(graph)
    scores = {v: index.score(v, K) for v in graph.vertices()}
    diverse = sum(1 for s in scores.values() if s > 0)
    print(f"{diverse} vertices have at least one social context at k={K}")

    seeds = ris_seeds(graph, 50, P, num_samples=600, seed=1)
    print(f"\nSeeded {len(seeds)} vertices via RIS influence maximization")

    # --- Exp-7: activation rate per score group ----------------------
    print("\nActivation rate by structural diversity score group:")
    for group in activation_rate_by_score_group(
            graph, scores, seeds, p=P, num_groups=4, runs=RUNS, seed=1):
        print(f"  scores {group.label:>7} ({group.num_vertices:>4} vertices): "
              f"{group.activated_rate:.3f}")

    # --- Exp-8: who should a campaign target? ------------------------
    r = 50
    truss_picks = TrussDivModel(index=index).select(graph, K, r)
    random_picks = RandomModel(seed=1).select(graph, K, r)
    truss_hit = activated_among_targets(graph, truss_picks, seeds, P,
                                        runs=RUNS, seed=2)
    random_hit = activated_among_targets(graph, random_picks, seeds, P,
                                         runs=RUNS, seed=2)
    print(f"\nOf {r} targeted vertices, expected activations:")
    print(f"  Truss-Div selection: {truss_hit:.1f}")
    print(f"  Random selection:    {random_hit:.1f}")


if __name__ == "__main__":
    main()
