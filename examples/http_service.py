"""Server-layer walkthrough: HTTP front, multi-graph routing, compaction.

The :class:`repro.server.DiversityRouter` hosts many named graphs in
one process behind a stdlib-only HTTP JSON API — the network boundary
the paper's serve-many-queries regime needs.  This script is the
`make smoke-server` end-to-end check (start server, query, update,
compact, stop), so it *asserts* its claims instead of just printing
them:

1. start: two graphs registered over one shared store, HTTP up;
2. query: wire answers byte-identical to in-process answers;
3. update: an edge batch over the wire, answers move to the new graph;
4. scores: hot thresholds persisted, a warm restart serves them
   cache-hot;
5. compact: superseded lineages reclaimed, warm starts intact;
6. stop: clean shutdown.

Run:  python examples/http_service.py
"""

import json
import tempfile

from repro.core.online import online_search
from repro.datasets.synthetic import powerlaw_cluster
from repro.server import DiversityRouter, ServerClient, serve
from repro.service import DiversityService, IndexStore

WORKLOAD = [(3, 5), (4, 10), (3, 20), (5, 5), (4, 3)]


def ranked(result):
    return [(entry.vertex, entry.score) for entry in result.entries]


def wire_ranked(payload):
    return list(zip(payload["vertices"], payload["scores"]))


def main() -> None:
    social = powerlaw_cluster(250, 5, 0.6, seed=11)
    citation = powerlaw_cluster(180, 4, 0.4, seed=23)
    store_dir = tempfile.mkdtemp(prefix="repro-store-")

    # -- 1. start: one process, many graphs, one shared store ----------
    router = DiversityRouter(store=IndexStore(store_dir))
    router.add_graph("social", social)
    router.add_graph("citation", citation)
    server = serve(router, port=0)
    base = f"http://127.0.0.1:{server.server_port}"
    client = ServerClient(base)
    health = client.healthz()
    assert health == {"status": "ok", "graphs": 2}, health
    print(f"serving {health['graphs']} graphs on {base}")

    # -- 2. query: the wire changes nothing about the answers ----------
    for name in ("social", "citation"):
        for k, r in WORKLOAD:
            wire = client.top_r(name, k=k, r=r)
            local = router.top_r(name, k, r, collect_contexts=False)
            assert json.dumps(wire_ranked(wire)) == \
                json.dumps(ranked(local)), (name, k, r)
    print(f"{2 * len(WORKLOAD)} HTTP answers byte-identical to in-process")

    # -- 3. update: an edge batch over the wire ------------------------
    u, v = next(iter(social.edges()))
    report = client.apply_updates("social", [("delete", u, v),
                                             ("insert", 0, 249)])
    mutated = social.copy()
    mutated.remove_edge(u, v)
    mutated.add_edge(0, 249)
    for k, r in WORKLOAD:
        assert client.top_r("social", k=k, r=r)["vertices"] == \
            online_search(mutated, k, r).vertices, (k, r)
    print(f"update batch applied over the wire "
          f"(v{report['version']}, {report['rebuilt_forests']} forests "
          f"rebuilt); answers match a fresh search")

    # -- 4. scores: hot thresholds survive a restart -------------------
    persisted = client.persist_scores("social")
    assert persisted, "the workload should have warmed some thresholds"
    revived = DiversityService.start(mutated, store=IndexStore(store_dir))
    assert revived.warm_started
    assert revived.snapshot.cached_thresholds() == persisted
    hot = revived.top_r(persisted[0], 5)
    assert hot.search_space == 0, "persisted threshold should serve cache-hot"
    print(f"score cache for k={persisted} restarted warm "
          f"(search_space={hot.search_space})")

    # -- 5. compact: the update lineage's stale versions reclaimed -----
    stats = client.stats()
    report = client.compact()
    assert report["removed_versions"] >= 1, report
    after = DiversityService.start(mutated, store=IndexStore(store_dir))
    assert after.warm_started, "compaction must keep every lineage head"
    print(f"compacted store: {report['removed_versions']} stale version(s), "
          f"{report['reclaimed_bytes']:,} bytes reclaimed; "
          f"warm start still works")

    # -- 6. stop -------------------------------------------------------
    assert stats["queries_total"] >= 4 * len(WORKLOAD)
    server.shutdown()
    server.server_close()
    print(f"served {stats['queries_total']} queries; shut down cleanly")


if __name__ == "__main__":
    main()
