# Development entry points.  CI (.github/workflows/ci.yml) runs
# `make check`, which is the tier-1 suite plus the executable-docs run —
# the pair that keeps the canonical ranking contract enforced.

PY ?= python

.PHONY: lint test doctest check smoke-service smoke-server smoke-cluster smoke-parallel-build smoke-mmap smoke-chaos examples bench-planner bench-warm bench-server bench-cluster bench-build bench-mmap bench-replication benchmarks

lint:           ## AST invariant checks (determinism, locks, exceptions, wire, ranking)
	PYTHONPATH=src $(PY) -m repro.lint

test:           ## tier-1 verify (ROADMAP)
	PYTHONPATH=src $(PY) -m pytest -x -q

doctest:        ## every module docstring example, executed
	PYTHONPATH=src $(PY) -m pytest -q tests/test_doctests.py

check: lint test doctest

smoke-service:  ## end-to-end service: store build, warm start, live updates
	PYTHONPATH=src $(PY) examples/diversity_service.py
	PYTHONPATH=src $(PY) -m pytest -q tests/test_service.py

smoke-server:   ## end-to-end HTTP: start server, query, update, compact, stop
	PYTHONPATH=src $(PY) examples/http_service.py
	PYTHONPATH=src $(PY) -m pytest -q tests/test_server.py

smoke-cluster:  ## end-to-end cluster: start 2 workers, query, kill one, recover, stop
	PYTHONPATH=src $(PY) examples/cluster_service.py
	PYTHONPATH=src $(PY) -m pytest -q tests/test_cluster.py tests/test_store_concurrency.py tests/test_property_random.py

smoke-parallel-build:  ## jobs=2 builds must byte-match serial builds
	PYTHONPATH=src $(PY) -m pytest -q tests/test_parallel_build.py

smoke-mmap:     ## binary format: round-trips, corrupt artifacts, lazy LRU, delta/compact
	PYTHONPATH=src $(PY) -m pytest -q tests/test_storage.py

smoke-chaos:    ## replication + fault injection: follower sync, rolling restarts, zero-503 moves, kill-during-update, journal truncation
	PYTHONPATH=src $(PY) -m pytest -q tests/test_replication.py tests/test_chaos.py tests/test_journal_checkpoint.py

examples:       ## every example script, executed (they assert their claims)
	for script in examples/*.py; do \
		echo "== $$script"; \
		PYTHONPATH=src $(PY) $$script || exit 1; \
	done

bench-planner:  ## engine planner vs fixed strategies (fast)
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/bench_engine_planner.py --benchmark-disable

bench-warm:     ## service warm start vs cold build (fast)
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/bench_service_warm_start.py --benchmark-disable

bench-server:   ## serving throughput: direct vs routed vs HTTP (fast)
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/bench_server_throughput.py --benchmark-disable

bench-cluster:  ## routed QPS: worker processes (1/2/4) vs single process
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/bench_cluster_throughput.py --benchmark-disable

bench-build:    ## index build: per-vertex vs shared pass vs worker pool
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/bench_parallel_build.py --benchmark-disable

bench-mmap:     ## store warm start: mmap vs JSON vs cold build (BENCH_mmap.json)
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/bench_mmap_warm_start.py --benchmark-disable

bench-replication:  ## follower sync: delta shipping vs full mirror (BENCH_replication.json)
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/bench_replication.py --benchmark-disable

benchmarks:     ## full paper-reproduction report (slow)
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/bench_*.py --benchmark-disable
